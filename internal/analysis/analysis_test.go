package analysis

import (
	"strings"
	"testing"

	"mpifault/internal/apps"
	"mpifault/internal/asm"
	"mpifault/internal/guest"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

func analyzeImage(t *testing.T, im *image.Image) (*Program, *Liveness, []Finding) {
	t.Helper()
	prog, err := Analyze(im)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	live := ComputeLiveness(prog)
	abiFindings, _ := ABICheck(prog)
	var all []Finding
	all = append(all, prog.Findings...)
	all = append(all, abiFindings...)
	all = append(all, live.Findings...)
	return prog, live, all
}

// TestSeedAppsClean: the three built-in applications must verify with
// zero CFG, ABI and FP-stack findings — they run correctly under the
// campaign harness, so any finding here is an analyzer false positive.
func TestSeedAppsClean(t *testing.T) {
	for _, name := range []string{"wavetoy", "minimd", "minicam"} {
		a, err := apps.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		im, err := a.Build(a.Default)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		prog, live, findings := analyzeImage(t, im)
		for _, f := range findings {
			t.Errorf("%s: unexpected finding: %s", name, f)
		}
		if len(prog.Funcs) < 10 {
			t.Errorf("%s: only %d functions analyzed", name, len(prog.Funcs))
		}
		// The liveness map must cover the app's entry point.
		if _, ok := live.LiveAt(im.Entry); !ok {
			t.Errorf("%s: no liveness at entry 0x%08x", name, im.Entry)
		}
	}
}

// buildWith links libc+libmpi plus the functions emitted by body; main
// just returns 0.
func buildWith(t *testing.T, body func(m *asm.Module)) *image.Image {
	t.Helper()
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	f := m.Func("main")
	f.Prologue(0)
	f.Movi(isa.R0, 0)
	f.Epilogue()
	if body != nil {
		body(m)
	}
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return im
}

func findingsFor(all []Finding, pass, fn string) []Finding {
	var out []Finding
	for _, f := range all {
		if f.Pass == pass && f.Func == fn {
			out = append(out, f)
		}
	}
	return out
}

// TestBrokenFunctionsFlagged: deliberately malformed functions — even
// ones nothing calls — must be caught by the matching pass.
func TestBrokenFunctionsFlagged(t *testing.T) {
	im := buildWith(t, func(m *asm.Module) {
		f := m.Func("bad_push") // pushes without popping: unbalanced frame
		f.Push(isa.R0)
		f.Ret()
		g := m.Func("bad_fp") // pops two FP values having pushed one
		g.Fldz()
		g.Faddp()
		g.Ret()
		h := m.Func("bad_fall") // no terminator: control runs off the end
		h.Movi(isa.R0, 1)
	})
	_, _, all := analyzeImage(t, im)
	if fs := findingsFor(all, "abi", "bad_push"); len(fs) == 0 {
		t.Error("unbalanced push/ret not flagged by the abi pass")
	} else if !strings.Contains(fs[0].Msg, "1 words left") {
		t.Errorf("bad_push: unexpected message %q", fs[0].Msg)
	}
	if fs := findingsFor(all, "fpstack", "bad_fp"); len(fs) == 0 {
		t.Error("FP over-pop not flagged by the fpstack pass")
	}
	if fs := findingsFor(all, "cfg", "bad_fall"); len(fs) == 0 {
		t.Error("fall-off-the-end not flagged by the cfg pass")
	}
	// The well-formed functions around them must stay clean.
	for _, f := range all {
		switch f.Func {
		case "bad_push", "bad_fp", "bad_fall":
		default:
			t.Errorf("collateral finding: %s", f)
		}
	}
}

// TestPatchedTextFlagged corrupts linked text the way a text-segment
// fault would and checks the CFG pass notices.
func TestPatchedTextFlagged(t *testing.T) {
	patch := func(t *testing.T, im *image.Image, fn string, idx int, mod func(*isa.Instr)) {
		t.Helper()
		sym, ok := im.Lookup(fn)
		if !ok {
			t.Fatalf("no symbol %s", fn)
		}
		off := sym.Addr - image.TextBase + uint32(idx*isa.InstrBytes)
		in := isa.Decode(im.Text[off : off+isa.InstrBytes])
		mod(&in)
		in.Encode(im.Text[off : off+isa.InstrBytes])
	}

	t.Run("undecodable", func(t *testing.T) {
		im := buildWith(t, nil)
		patch(t, im, "main", 1, func(in *isa.Instr) { in.Op = isa.Op(0xEE) })
		_, _, all := analyzeImage(t, im)
		fs := findingsFor(all, "cfg", "main")
		if len(fs) == 0 || !strings.Contains(fs[0].Msg, "undecodable") {
			t.Errorf("patched opcode not flagged: %v", fs)
		}
	})
	t.Run("branch-mid-instruction", func(t *testing.T) {
		im := buildWith(t, func(m *asm.Module) {
			f := m.Func("loopy")
			l := f.NewLabel()
			f.Label(l)
			f.Cmpi(isa.R0, 0)
			f.Bne(l)
			f.Ret()
		})
		patch(t, im, "loopy", 1, func(in *isa.Instr) { in.Imm += 4 })
		_, _, all := analyzeImage(t, im)
		fs := findingsFor(all, "cfg", "loopy")
		if len(fs) == 0 || !strings.Contains(fs[0].Msg, "middle of an instruction") {
			t.Errorf("misaligned branch target not flagged: %v", fs)
		}
	})
}

// TestLivenessKnownSets checks the dataflow on a function with obvious
// live and dead registers.
func TestLivenessKnownSets(t *testing.T) {
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	leaf := m.Func("leaf")
	leaf.Movi(isa.R0, 1)   // 0
	leaf.Movi(isa.R1, 2)   // 1
	leaf.Add(2, isa.R0, 1) // 2: r2 = r0 + r1
	leaf.Ret()             // 3
	f := m.Func("main")
	f.Prologue(0)
	f.Call("leaf")
	f.Movi(isa.R0, 0)
	f.Epilogue()
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	prog, live, all := analyzeImage(t, im)
	for _, f := range all {
		t.Errorf("unexpected finding: %s", f)
	}
	sym, _ := im.Lookup("leaf")
	at := func(i int) RegMask {
		mask, ok := live.LiveAt(sym.Addr + uint32(i*isa.InstrBytes))
		if !ok {
			t.Fatalf("no liveness at leaf+%d", i*isa.InstrBytes)
		}
		return RegMask(mask)
	}
	// At the add, its operands are live and its result is not yet.
	if m := at(2); !m.Has(0) || !m.Has(1) {
		t.Errorf("at add: r0,r1 must be live, got %s", m)
	}
	if m := at(2); m.Has(2) || m.Has(3) {
		t.Errorf("at add: r2,r3 must be dead, got %s", m)
	}
	// At entry, the about-to-be-overwritten r0/r1 are dead.
	if m := at(0); m.Has(0) || m.Has(1) || m.Has(2) {
		t.Errorf("at entry: r0,r1,r2 must be dead, got %s", m)
	}
	// sp stays live everywhere inside a function under the convention.
	if m := at(1); !m.Has(isa.SP) {
		t.Errorf("sp must be live, got %s", m)
	}
	// The noreturn runtime abort must be recognized: its callers' FP
	// depths would be inconsistent otherwise (fchecknan links in libc).
	if ab := prog.Func("app_abort"); ab == nil || !ab.NoReturn {
		t.Error("app_abort must be classified noreturn")
	}
}
