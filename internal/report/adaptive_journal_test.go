package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpifault/internal/core"
)

func adaptiveWavetoyConfig(t testing.TB) core.Config {
	t.Helper()
	im, ranks := buildWavetoy(t)
	cfg := core.Config{
		Image: im, Ranks: ranks, Seed: 7,
		Regions:  []core.Region{core.RegionRegularReg, core.RegionHeap},
		Adaptive: true, TargetHalfWidth: 0.15,
		KeepExperiments: true,
	}
	if _, err := core.NormalizeAdaptive(&cfg); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func runAdaptiveJournal(t testing.TB, path string) *core.Result {
	t.Helper()
	cfg := adaptiveWavetoyConfig(t)
	j, err := CreateJournal(path, CampaignHeader("wavetoy", cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg.OnExperiment = func(e core.Experiment) {
		if err := j.Append(e); err != nil {
			t.Errorf("append: %v", err)
		}
	}
	res, err := core.RunAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAdaptiveJournalByteIdenticalAndMerges is the journal half of the
// adaptive determinism contract: a fixed (seed, config) adaptive
// campaign writes byte-identical journals across reruns, and faultmerge
// replays the planner over the recorded outcomes to reproduce the
// single-process CSV byte for byte.
func TestAdaptiveJournalByteIdenticalAndMerges(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.jsonl")
	pathB := filepath.Join(dir, "b.jsonl")
	res := runAdaptiveJournal(t, pathA)
	runAdaptiveJournal(t, pathB)

	a, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("adaptive journals differ between identical (seed, config) reruns")
	}

	m, err := MergeJournals([]string{pathA})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Adaptive {
		t.Error("merge did not recognize the adaptive header")
	}
	if m.Confidence != core.DefaultConfidence || m.Target != 0.15 {
		t.Errorf("merged contract (%v, %v) differs from the recorded one", m.Confidence, m.Target)
	}
	var want, got bytes.Buffer
	WriteCampaignCSV(&want, "wavetoy", res)
	WriteCampaignCSV(&got, m.App, m.Result)
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("merged CSV differs from the single-process CSV:\n-- single --\n%s\n-- merged --\n%s",
			want.Bytes(), got.Bytes())
	}
}

// TestAdaptiveMergeRejectsTruncatedJournal: the merge replays the
// planner, so a journal missing experiments the planner must have
// allocated cannot pass itself off as a completed campaign.
func TestAdaptiveMergeRejectsTruncatedJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test is slow")
	}
	path := filepath.Join(t.TempDir(), "trunc.jsonl")
	runAdaptiveJournal(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal too short to truncate (%d lines)", len(lines))
	}
	trunc := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
	if err := os.WriteFile(path, trunc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeJournals([]string{path}); err == nil {
		t.Error("merge accepted a journal missing a planner-allocated experiment")
	} else if !strings.Contains(err.Error(), "planner") && !strings.Contains(err.Error(), "completed campaign") {
		t.Errorf("unhelpful truncation error: %v", err)
	}
}
