// Message-corruption study: the §6.2 decomposition of message fault
// sensitivity.  For each workload this example injects bit flips into the
// incoming Channel stream and splits the outcomes by whether the flipped
// byte landed in a packet header or in user payload.
//
// The paper's findings this reproduces:
//
//   - header corruption is violent (~40 % of header flips corrupt the
//     execution, mostly crash/hang);
//
//   - payload corruption of wavetoy's near-zero floating-point arrays is
//     mostly invisible, masked further by low-precision text output;
//
//   - minimd detects much of its payload corruption via checksums;
//
//   - minicam, with control-dominated traffic and no checksums, converts
//     message faults mostly into crashes and hangs.
//
//     go run ./examples/message_corruption
package main

import (
	"fmt"
	"log"
	"strings"

	"mpifault/internal/apps"
	"mpifault/internal/classify"
	"mpifault/internal/core"
)

func main() {
	log.SetFlags(0)
	const injections = 120

	for _, name := range []string{"wavetoy", "minimd", "minicam"} {
		app, err := apps.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		im, err := app.Build(app.Default)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(core.Config{
			Image:           im,
			Ranks:           app.Default.Ranks,
			Injections:      injections,
			Regions:         []core.Region{core.RegionMessage},
			Seed:            7,
			KeepExperiments: true,
		})
		if err != nil {
			log.Fatal(err)
		}

		type bucket struct {
			runs, errors int
			byOutcome    map[classify.Outcome]int
		}
		buckets := map[string]*bucket{
			"header":  {byOutcome: map[classify.Outcome]int{}},
			"payload": {byOutcome: map[classify.Outcome]int{}},
		}
		for _, e := range res.Experiments {
			var b *bucket
			switch {
			case strings.Contains(e.Desc, "(header)"):
				b = buckets["header"]
			case strings.Contains(e.Desc, "(payload)"):
				b = buckets["payload"]
			default:
				continue // injection offset was never reached
			}
			b.runs++
			if e.Outcome.IsError() {
				b.errors++
			}
			b.byOutcome[e.Outcome]++
		}

		fmt.Printf("%s (stands in for %s):\n", name, app.Paper)
		for _, k := range []string{"header", "payload"} {
			b := buckets[k]
			if b.runs == 0 {
				continue
			}
			fmt.Printf("  %-8s %3d flips, %3.0f%% corrupted the execution  ", k,
				b.runs, 100*float64(b.errors)/float64(b.runs))
			var parts []string
			for o := classify.Outcome(0); o < classify.NumOutcomes; o++ {
				if n := b.byOutcome[o]; n > 0 && o != classify.Correct {
					parts = append(parts, fmt.Sprintf("%s %d", o, n))
				}
			}
			fmt.Printf("(%s)\n", strings.Join(parts, ", "))
		}
		fmt.Println()
	}
}
