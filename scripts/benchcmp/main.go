// Command benchcmp compares `go test -bench` output on stdin against
// the reference timings recorded in BENCH_vm.json and reports
// regressions beyond a percentage threshold.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./internal/vm | \
//	    go run ./scripts/benchcmp -ref BENCH_vm.json -threshold 25
//
// It exits 1 when any benchmark regressed past the threshold (CI runs
// it as a non-blocking step, so a regression warns without failing the
// pipeline) and 0 otherwise.  Benchmarks present on only one side are
// reported but never fail the check.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

type reference struct {
	Benchmarks map[string]struct {
		After struct {
			Time float64 `json:"time"`
		} `json:"after"`
	} `json:"benchmarks"`
}

func main() {
	refPath := flag.String("ref", "BENCH_vm.json", "reference benchmark JSON")
	threshold := flag.Float64("threshold", 25, "warn when ns/op regresses more than this percentage")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("benchcmp: ")

	data, err := os.ReadFile(*refPath)
	if err != nil {
		log.Fatal(err)
	}
	var ref reference
	if err := json.Unmarshal(data, &ref); err != nil {
		log.Fatalf("%s: %v", *refPath, err)
	}

	measured := make(map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		name, nsPerOp, ok := parseBenchLine(sc.Text())
		if ok {
			measured[name] = nsPerOp
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	regressed := 0
	for name, entry := range ref.Benchmarks {
		want := entry.After.Time
		got, ok := measured[name]
		if !ok || want == 0 {
			if want != 0 {
				fmt.Printf("benchcmp: %-22s reference %.4g ns/op, not measured this run\n", name, want)
			}
			continue
		}
		deltaPct := 100 * (got - want) / want
		status := "ok"
		if deltaPct > *threshold {
			status = "REGRESSION"
			regressed++
		}
		fmt.Printf("benchcmp: %-22s ref %.4g ns/op, now %.4g ns/op (%+.1f%%) %s\n",
			name, want, got, deltaPct, status)
	}
	for name := range measured {
		if _, ok := ref.Benchmarks[name]; !ok {
			fmt.Printf("benchcmp: %-22s %.4g ns/op (no reference entry)\n", name, measured[name])
		}
	}
	if regressed > 0 {
		log.Fatalf("%d benchmark(s) regressed more than %.0f%% vs %s", regressed, *threshold, *refPath)
	}
}

// parseBenchLine extracts (name, ns/op) from one line of `go test
// -bench` output, e.g. "BenchmarkStep-8   1000   12.3 ns/op   0 B/op".
// The "-N" GOMAXPROCS suffix is stripped so names match the reference.
func parseBenchLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		name = name[:i]
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return name, v, true
		}
	}
	return "", 0, false
}
