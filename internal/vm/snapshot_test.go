package vm

import (
	"testing"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/image"
)

// pokeState gives every snapshotted field a distinctive value: registers,
// flags, FPU stack (top, tags, data), instruction count, memory in each
// writable segment, and a live heap allocation.
func pokeState(t *testing.T, m *Machine) (heapAddr uint32) {
	t.Helper()
	for i := range m.Regs {
		m.Regs[i] = 0xA0000000 + uint32(i)
	}
	m.Flags = 0b101
	m.Instrs = 7_777
	m.MinSP = m.Image.StackBase() + 16

	m.FP.Regs[2] = 3.25
	m.FP.SetTop(2)
	m.FP.SetTag(2, 0) // valid
	m.FP.FIP = 0x1234

	heapAddr = m.Heap.Alloc(64, abi.ChunkUser)
	if heapAddr == 0 {
		t.Fatal("heap alloc failed")
	}
	for _, w := range []struct {
		seg string
		off uint32
		v   uint32
	}{
		{"data", 0, 0x11111111},
		{"bss", 8, 0x22222222},
		{"stack", 4, 0x33333333},
	} {
		base, _, ok := m.SegmentRange(w.seg)
		if !ok {
			t.Fatalf("no %s segment", w.seg)
		}
		if trap := m.Store32(base+w.off, w.v); trap != nil {
			t.Fatalf("store %s: %v", w.seg, trap)
		}
	}
	if trap := m.Store32(heapAddr, 0x44444444); trap != nil {
		t.Fatalf("store heap: %v", trap)
	}
	return heapAddr
}

// checkState verifies everything pokeState set.
func checkState(t *testing.T, m *Machine, heapAddr uint32) {
	t.Helper()
	for i := range m.Regs {
		if m.Regs[i] != 0xA0000000+uint32(i) {
			t.Errorf("R%d = %#x", i, m.Regs[i])
		}
	}
	if m.Flags != 0b101 {
		t.Errorf("Flags = %#x", m.Flags)
	}
	if m.Instrs != 7_777 {
		t.Errorf("Instrs = %d", m.Instrs)
	}
	if m.MinSP != m.Image.StackBase()+16 {
		t.Errorf("MinSP = %#x", m.MinSP)
	}
	if m.FP.Regs[2] != 3.25 || m.FP.Top() != 2 || m.FP.Tag(2) != 0 || m.FP.FIP != 0x1234 {
		t.Errorf("FP env = %+v", m.FP)
	}
	if m.FP.TWD == 0xFFFF {
		t.Error("FP tag word still all-empty; tags not restored")
	}
	for _, w := range []struct {
		seg string
		off uint32
		v   uint32
	}{
		{"data", 0, 0x11111111},
		{"bss", 8, 0x22222222},
		{"stack", 4, 0x33333333},
	} {
		base, _, _ := m.SegmentRange(w.seg)
		got, trap := m.Load32(base + w.off)
		if trap != nil || got != w.v {
			t.Errorf("%s word = %#x, %v (want %#x)", w.seg, got, trap, w.v)
		}
	}
	if got, trap := m.Load32(heapAddr); trap != nil || got != 0x44444444 {
		t.Errorf("heap word = %#x, %v", got, trap)
	}
	if m.Heap.LiveBytes(abi.ChunkUser) != 64 {
		t.Errorf("live user bytes = %d, want 64", m.Heap.LiveBytes(abi.ChunkUser))
	}
}

func snapImage(t *testing.T) *image.Image {
	// Give the image real data and BSS segments so the per-segment pokes
	// don't alias each other (an empty BSS would make bss+8 a heap byte).
	return assemble(t, func(m *asm.Module, f *asm.Func) {
		m.Data("d", make([]byte, 64))
		m.BSS("b", 64)
	})
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	im := snapImage(t)
	m := New(im)
	heapAddr := pokeState(t, m)
	snap := m.Snapshot()

	// The live machine stays runnable and mutable after the capture;
	// trash everything the snapshot recorded.
	dataBase, _, _ := m.SegmentRange("data")
	m.Regs[0] = 0xBAD
	m.Instrs = 1
	m.FP.SetTag(2, 3)
	if trap := m.Store32(dataBase, 0xDEAD); trap != nil {
		t.Fatalf("post-snapshot store: %v", trap)
	}
	if trap := m.Store32(heapAddr, 0xDEAD); trap != nil {
		t.Fatalf("post-snapshot store: %v", trap)
	}

	if snap.Instrs() != 7_777 {
		t.Errorf("snapshot Instrs = %d", snap.Instrs())
	}
	r := snap.NewMachine()
	checkState(t, r, heapAddr)

	// The restored allocator must be functional and independent.
	b := r.Heap.Alloc(32, abi.ChunkUser)
	if b == 0 {
		t.Fatal("alloc on restored machine failed")
	}
	if r.Heap.LiveBytes(abi.ChunkUser) != 96 {
		t.Errorf("restored live bytes = %d", r.Heap.LiveBytes(abi.ChunkUser))
	}
	if m.Heap.LiveBytes(abi.ChunkUser) != 64 {
		t.Error("alloc on restored machine leaked into the original allocator")
	}
}

func TestSnapshotCOWIsolation(t *testing.T) {
	im := snapImage(t)
	m := New(im)
	heapAddr := pokeState(t, m)
	snap := m.Snapshot()

	// Two machines restored from the same snapshot share backing bytes;
	// writes on one must never reach the other or the original.
	r1 := snap.NewMachine()
	r2 := snap.NewMachine()
	dataBase, _, _ := m.SegmentRange("data")
	if trap := r1.Store32(dataBase, 0x55555555); trap != nil {
		t.Fatal(trap)
	}
	if trap := r1.Store32(heapAddr, 0x66666666); trap != nil {
		t.Fatal(trap)
	}
	checkState(t, r2, heapAddr)
	checkState(t, m, heapAddr)
	if got, _ := r1.Load32(dataBase); got != 0x55555555 {
		t.Errorf("r1 lost its own write: %#x", got)
	}

	// And the reverse direction: writes on the original after the capture
	// must not show through machines restored later.
	if trap := m.Store32(dataBase, 0x77777777); trap != nil {
		t.Fatal(trap)
	}
	r3 := snap.NewMachine()
	checkState(t, r3, heapAddr)
}

// TestSnapshotMidRun snapshots a machine stopped on a budget inside real
// execution and checks the restored machine finishes with the identical
// architectural outcome as the original.
func TestSnapshotMidRun(t *testing.T) {
	im := assemble(t, func(_ *asm.Module, f *asm.Func) {
		// A loop long enough to interrupt: 1000 iterations of add.
		f.Movi(1, 0)
		f.Movi(2, 1000)
		loop := f.NewLabel()
		f.Label(loop)
		f.Addi(1, 1, 3)
		f.Addi(2, 2, -1)
		f.Cmpi(2, 0)
		f.Bne(loop)
	})
	run := func(m *Machine) (uint32, uint64) {
		m.Handler = &testHandler{}
		res := m.Run(1 << 20)
		if res.Reason != StopTrap || res.Trap.Kind != TrapExit {
			t.Fatalf("run did not exit cleanly: %+v", res)
		}
		return m.Regs[1], m.Instrs
	}

	ref := New(im)
	wantR1, wantInstrs := run(ref)

	m := New(im)
	m.Handler = &testHandler{}
	if res := m.Run(500); res.Reason != StopBudget {
		t.Fatalf("expected budget stop, got %+v", res)
	}
	snap := m.Snapshot()
	r := snap.NewMachine()
	if r.Instrs != 500 {
		t.Fatalf("restored Instrs = %d", r.Instrs)
	}
	gotR1, gotInstrs := run(r)
	if gotR1 != wantR1 || gotInstrs != wantInstrs {
		t.Fatalf("restored run diverged: R1=%d instrs=%d, want R1=%d instrs=%d",
			gotR1, gotInstrs, wantR1, wantInstrs)
	}
}
