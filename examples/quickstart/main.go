// Quickstart: build one of the paper's workloads, run it fault-free on
// the simulated cluster, then inject a single register bit flip and see
// how it manifests.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mpifault/internal/apps"
	"mpifault/internal/core"
	"mpifault/internal/mpi"
)

func main() {
	log.SetFlags(0)

	// 1. Build the Cactus Wavetoy analogue into a guest binary image.
	app, err := apps.Get("wavetoy")
	if err != nil {
		log.Fatal(err)
	}
	im, err := app.Build(app.Default)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d bytes text, %d symbols, %d ranks\n",
		app.Name, len(im.Text), len(im.Symbols), app.Default.Ranks)

	// 2. Golden (fault-free) run: the reference output and timing.
	golden, err := core.RunGolden(im, app.Default.Ranks, mpi.Config{}, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: max %d instructions/rank, %d output bytes\n",
		golden.MaxInstrs(), len(golden.Output))
	fmt.Printf("rank 0 console: %s", golden.Result.Stdout[0])

	// 3. Inject ten single-bit register faults (one per run) and report
	// each manifestation, the paper's §5.1 taxonomy.
	res, err := core.Run(core.Config{
		Image:           im,
		Ranks:           app.Default.Ranks,
		Injections:      10,
		Regions:         []core.Region{core.RegionRegularReg},
		Seed:            2004, // the year of the paper; any seed works
		KeepExperiments: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nten register-fault experiments:")
	for _, e := range res.Experiments {
		fmt.Printf("  rank %d @ instruction %-8d %-22s -> %s\n",
			e.Rank, e.Trigger, e.Desc, e.Outcome)
	}
	t := res.Tallies[0]
	fmt.Printf("\nerror rate: %.0f%% (%d/%d manifested)\n",
		t.ErrorRate(), t.Errors(), t.Executions)
}
