// Package profile measures the per-process application profiles of the
// paper's Table 1: static section sizes (the objdump/nm measurement),
// stable heap size (the malloc-wrapper measurement), stack depth, and the
// per-process incoming message volume with its control/data split (the
// Channel/ADI instrumentation of §4.2).
package profile

import (
	"fmt"
	"time"

	"mpifault/internal/cluster"
	"mpifault/internal/image"
	"mpifault/internal/mpi"
	"mpifault/internal/vm"
)

// Profile is one application's Table 1 row group.
type Profile struct {
	App   string
	Ranks int

	// Static sections, whole image and user/MPI attribution.
	TextBytes uint32
	DataBytes uint32
	BSSBytes  uint32
	UserText  uint32
	MPIText   uint32

	// HeapStable is the per-process user heap high-water mark (the
	// paper's "stable size" the heap grows to); MPIHeap is the runtime's
	// own buffering, tagged ChunkMPI by the allocator.
	HeapStable uint32
	MPIHeap    uint32

	// StackBytes is the deepest observed stack extent.
	StackBytes uint32

	// Per-process incoming message volume across ranks.
	MsgBytesMin uint64
	MsgBytesMax uint64
	// HeaderPct and UserPct split total received volume (Table 1's
	// "Distribution": header vs user payload).
	HeaderPct float64
	UserPct   float64
	// ControlMsgs and DataMsgs count received Channel packets by class.
	ControlMsgs uint64
	DataMsgs    uint64

	// GoldenInstrs is the largest per-rank retired-instruction count —
	// the execution-time axis used to schedule injections.
	GoldenInstrs uint64
}

// Measure executes one fault-free run and assembles the profile.
func Measure(name string, im *image.Image, ranks int, cfg mpi.Config) (*Profile, error) {
	res := cluster.Run(cluster.Job{
		Image: im, Size: ranks, MPIConfig: cfg, WallLimit: 30 * time.Second,
	})
	if res.HangDetected {
		return nil, fmt.Errorf("profile: golden run hung: %s", res.HangCause)
	}
	p := &Profile{
		App:       name,
		Ranks:     ranks,
		TextBytes: uint32(len(im.Text)),
		DataBytes: uint32(len(im.Data)),
		BSSBytes:  im.BSSSize,
	}
	for _, s := range im.Symbols {
		if s.Kind == image.SymFunc {
			if s.Owner == image.OwnerUser {
				p.UserText += s.Size
			} else {
				p.MPIText += s.Size
			}
		}
	}

	var hdr, payload uint64
	p.MsgBytesMin = ^uint64(0)
	for r, rr := range res.Ranks {
		if rr.Trap == nil || rr.Trap.Kind != vm.TrapExit {
			return nil, fmt.Errorf("profile: rank %d did not exit cleanly: %v", r, rr.Trap)
		}
		if rr.HeapPeakUser > p.HeapStable {
			p.HeapStable = rr.HeapPeakUser
		}
		if rr.HeapPeakMPI > p.MPIHeap {
			p.MPIHeap = rr.HeapPeakMPI
		}
		if d := image.StackTop - rr.MinSP; d > p.StackBytes {
			p.StackBytes = d
		}
		if rr.Instrs > p.GoldenInstrs {
			p.GoldenInstrs = rr.Instrs
		}
		tot := rr.Stats.TotalBytes()
		if tot < p.MsgBytesMin {
			p.MsgBytesMin = tot
		}
		if tot > p.MsgBytesMax {
			p.MsgBytesMax = tot
		}
		hdr += rr.Stats.HeaderBytes
		payload += rr.Stats.PayloadBytes
		p.ControlMsgs += rr.Stats.ControlMsgs
		p.DataMsgs += rr.Stats.DataMsgs
	}
	if hdr+payload > 0 {
		p.HeaderPct = 100 * float64(hdr) / float64(hdr+payload)
		p.UserPct = 100 - p.HeaderPct
	}
	return p, nil
}
