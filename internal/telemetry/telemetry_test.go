package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentHammering drives every metric kind from many goroutines
// at once; under -race this proves the registry and the metric
// operations are safe for the campaign's worker pool.
func TestConcurrentHammering(t *testing.T) {
	reg := New()
	const (
		goroutines = 16
		iterations = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				// Lookups race with each other and with operations on
				// the shared metrics.
				reg.Counter("shared_total").Inc()
				reg.Counter(fmt.Sprintf("per_goroutine_total_%d", g%4)).Add(2)
				reg.Gauge("depth").Set(int64(i))
				reg.Gauge("peak").SetMax(int64(i))
				reg.Histogram("lat", LatencyBuckets).Observe(uint64(i))
				if i%64 == 0 {
					reg.Snapshot() // snapshots race with writers
				}
			}
		}(g)
	}
	wg.Wait()

	s := reg.Snapshot()
	if got := s.Counters["shared_total"]; got != goroutines*iterations {
		t.Errorf("shared counter = %d, want %d", got, goroutines*iterations)
	}
	var per uint64
	for i := 0; i < 4; i++ {
		per += s.Counters[fmt.Sprintf("per_goroutine_total_%d", i)]
	}
	if want := uint64(goroutines * iterations * 2); per != want {
		t.Errorf("per-goroutine counters sum = %d, want %d", per, want)
	}
	if got := s.Gauges["peak"]; got != iterations-1 {
		t.Errorf("SetMax high-water = %d, want %d", got, iterations-1)
	}
	h := s.Histograms["lat"]
	if h.Count != goroutines*iterations {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*iterations)
	}
	var buckets uint64
	for _, c := range h.Counts {
		buckets += c
	}
	if buckets != h.Count {
		t.Errorf("bucket sum %d != count %d", buckets, h.Count)
	}
}

// TestNilRegistryIsUsable is the load-bearing property of the whole
// package: disabled telemetry must need no branches at instrumentation
// sites.
func TestNilRegistryIsUsable(t *testing.T) {
	var reg *Registry
	reg.Counter("a").Inc()
	reg.Gauge("b").Set(7)
	reg.Histogram("c", LatencyBuckets).Observe(42)
	s := reg.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]uint64{10, 100})
	for _, v := range []uint64{0, 10, 11, 100, 101, 1 << 40} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bounds are inclusive upper limits: {0,10} | {11,100} | {101,2^40}.
	want := []uint64{2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if wantSum := uint64(0 + 10 + 11 + 100 + 101 + 1<<40); s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestCounterAndGaugeBasics(t *testing.T) {
	reg := New()
	c := reg.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if reg.Counter("x") != c {
		t.Error("second lookup returned a different counter")
	}
	g := reg.Gauge("y")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
	g.SetMax(5) // below current: no change
	if g.Value() != 7 {
		t.Errorf("SetMax lowered the gauge to %d", g.Value())
	}
}
