package vm

import (
	"testing"
	"testing/quick"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/image"
	"mpifault/internal/isa"
	"mpifault/internal/rng"
)

func newHeapMachine(t testing.TB) *Machine {
	t.Helper()
	return New(assemble(t, func(m *asm.Module, f *asm.Func) {}))
}

func TestAllocFreeBasic(t *testing.T) {
	m := newHeapMachine(t)
	a := m.Heap.Alloc(100, abi.ChunkUser)
	if a == 0 {
		t.Fatal("alloc failed")
	}
	if a < m.Image.HeapBase || a >= m.Image.HeapLimit {
		t.Fatalf("chunk at %#x outside heap", a)
	}
	if a%8 != 0 {
		t.Fatalf("payload %#x unaligned", a)
	}
	if tr := m.Heap.Free(a); tr != nil {
		t.Fatalf("free: %v", tr)
	}
}

func TestAllocZeroBytesStillDistinct(t *testing.T) {
	m := newHeapMachine(t)
	a := m.Heap.Alloc(0, abi.ChunkUser)
	b := m.Heap.Alloc(0, abi.ChunkUser)
	if a == 0 || b == 0 || a == b {
		t.Fatalf("zero-size allocs: %#x, %#x", a, b)
	}
}

func TestChunkHeadersLiveInGuestMemory(t *testing.T) {
	m := newHeapMachine(t)
	a := m.Heap.Alloc(64, abi.ChunkMPI)
	hdr, ok := m.RawRead(a-8, 8)
	if !ok {
		t.Fatal("header unreadable")
	}
	tag := uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24
	if tag != abi.ChunkMPI {
		t.Fatalf("header tag = %#x", tag)
	}
}

func TestFreeDetectsCorruptedHeader(t *testing.T) {
	m := newHeapMachine(t)
	a := m.Heap.Alloc(64, abi.ChunkUser)
	// Corrupt the tag, as a heap fault might.
	m.RawWrite(a-8, []byte{0xDE, 0xAD})
	tr := m.Heap.Free(a)
	if tr == nil || tr.Kind != TrapSegv {
		t.Fatalf("free of corrupted chunk: %v", tr)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	m := newHeapMachine(t)
	a := m.Heap.Alloc(64, abi.ChunkUser)
	if tr := m.Heap.Free(a); tr != nil {
		t.Fatal(tr)
	}
	if tr := m.Heap.Free(a); tr == nil {
		t.Fatal("double free must trap")
	}
}

func TestFreeUnallocatedDetected(t *testing.T) {
	m := newHeapMachine(t)
	if tr := m.Heap.Free(m.Image.HeapBase + 128); tr == nil {
		t.Fatal("free of never-allocated address must trap")
	}
}

func TestChunksScanFindsUserChunksOnly(t *testing.T) {
	m := newHeapMachine(t)
	u1 := m.Heap.Alloc(100, abi.ChunkUser)
	mp := m.Heap.Alloc(200, abi.ChunkMPI)
	u2 := m.Heap.Alloc(50, abi.ChunkUser)
	chunks := m.Heap.Chunks()
	if len(chunks) != 3 {
		t.Fatalf("scan found %d chunks", len(chunks))
	}
	var userBytes, mpiBytes uint32
	for _, c := range chunks {
		if !c.Valid {
			t.Fatalf("chunk %#x invalid", c.Payload)
		}
		switch c.Tag {
		case abi.ChunkUser:
			userBytes += c.Size
		case abi.ChunkMPI:
			mpiBytes += c.Size
		}
	}
	// Sizes are 8-byte-aligned payload extents: 104+56 and 200.
	if userBytes != 160 || mpiBytes != 200 {
		t.Fatalf("user=%d mpi=%d", userBytes, mpiBytes)
	}
	_ = u1
	_ = mp
	_ = u2
}

func TestCorruptedTagVisibleToScan(t *testing.T) {
	m := newHeapMachine(t)
	a := m.Heap.Alloc(64, abi.ChunkUser)
	m.RawWrite(a-8, []byte{1, 2, 3, 4})
	chunks := m.Heap.Chunks()
	if len(chunks) != 1 || chunks[0].Valid {
		t.Fatalf("scan should report the chunk as invalid: %+v", chunks)
	}
}

func TestReuseAfterFree(t *testing.T) {
	m := newHeapMachine(t)
	a := m.Heap.Alloc(256, abi.ChunkUser)
	m.Heap.Free(a)
	b := m.Heap.Alloc(256, abi.ChunkUser)
	if b != a {
		t.Fatalf("first-fit should reuse the freed chunk: %#x vs %#x", a, b)
	}
}

func TestCoalescing(t *testing.T) {
	m := newHeapMachine(t)
	a := m.Heap.Alloc(100, abi.ChunkUser)
	b := m.Heap.Alloc(100, abi.ChunkUser)
	c := m.Heap.Alloc(100, abi.ChunkUser)
	m.Heap.Free(a)
	m.Heap.Free(b) // coalesces with a
	// A chunk spanning both freed regions must fit without growing brk.
	brk := m.Heap.Brk()
	d := m.Heap.Alloc(200, abi.ChunkUser)
	if d == 0 {
		t.Fatal("alloc failed")
	}
	if m.Heap.Brk() != brk {
		t.Fatal("allocation should have been satisfied from the coalesced free spans")
	}
	_ = c
}

func TestExhaustionReturnsZero(t *testing.T) {
	m := newHeapMachine(t)
	if a := m.Heap.Alloc(1<<21, abi.ChunkUser); a != 0 { // heap is 1 MiB here
		t.Fatalf("oversized alloc returned %#x", a)
	}
}

func TestPeakAccounting(t *testing.T) {
	m := newHeapMachine(t)
	a := m.Heap.Alloc(1000, abi.ChunkUser)
	b := m.Heap.Alloc(2000, abi.ChunkUser)
	m.Heap.Free(a)
	m.Heap.Free(b)
	if m.Heap.PeakUser < 3000 {
		t.Fatalf("peak user = %d", m.Heap.PeakUser)
	}
	if m.Heap.LiveBytes(abi.ChunkUser) != 0 {
		t.Fatalf("live after free = %d", m.Heap.LiveBytes(abi.ChunkUser))
	}
}

// TestAllocatorInvariantsProperty exercises random alloc/free sequences:
// payloads never overlap, all stay in the heap, and frees succeed.
func TestAllocatorInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		m := newHeapMachine(t)
		r := rng.New(seed)
		type chunk struct{ addr, size uint32 }
		var live []chunk
		for i := 0; i < 200; i++ {
			if len(live) > 0 && r.Bool() {
				k := r.Intn(len(live))
				if tr := m.Heap.Free(live[k].addr); tr != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
				continue
			}
			size := uint32(r.Intn(2000) + 1)
			tag := uint32(abi.ChunkUser)
			if r.Bool() {
				tag = abi.ChunkMPI
			}
			a := m.Heap.Alloc(size, tag)
			if a == 0 {
				continue // exhaustion is legal
			}
			// No overlap with any live chunk (including headers).
			for _, c := range live {
				if a < c.addr+c.size && c.addr < a+size+8 {
					return false
				}
			}
			live = append(live, chunk{a, size})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWalkFramesFindsUserFrames(t *testing.T) {
	// Build main -> leaf and capture the walk at the deepest point via a
	// syscall-triggered inspection.
	b := asm.NewBuilder()
	m := b.Module("t", image.OwnerUser)
	leaf := m.Func("leaf")
	leaf.Prologue(8)
	leaf.Sys(1000) // inspection point
	leaf.Epilogue()
	f := m.Func("main")
	f.Prologue(0)
	f.CallArgs("leaf", asm.Imm(1), asm.Imm(2))
	f.Movi(isa.R0, 0)
	f.Sys(abi.SysExit)
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mach := New(im)
	var frames []Frame
	mach.Handler = syscallFunc(func(m *Machine, num int32) *Trap {
		if num == 1000 {
			frames = m.WalkFrames()
			return nil
		}
		return &Trap{Kind: TrapExit, PC: m.PC}
	})
	mach.Run(100_000)
	if len(frames) < 2 {
		t.Fatalf("walk found %d frames, want >= 2 (leaf, main)", len(frames))
	}
	for i, fr := range frames {
		if !fr.UserContext {
			t.Errorf("frame %d (ret %#x) not user context", i, fr.RetAddr)
		}
	}
	// Frames must be ordered toward the stack base.
	for i := 1; i < len(frames); i++ {
		if frames[i].FP <= frames[i-1].FP {
			t.Fatal("frame pointers not monotonically increasing")
		}
	}
}

type syscallFunc func(m *Machine, num int32) *Trap

func (f syscallFunc) Syscall(m *Machine, num int32) *Trap { return f(m, num) }

func TestWalkFramesStopsOnCorruption(t *testing.T) {
	m := newHeapMachine(t)
	// Forge a frame chain then corrupt it; the walk must terminate.
	m.Regs[isa.FP] = image.StackTop - 64
	m.Store32(image.StackTop-64, 0x12)       // saved FP: below current -> stop
	m.Store32(image.StackTop-60, 0xDEADBEEF) // ret addr: nonsense
	frames := m.WalkFrames()
	if len(frames) > 1 {
		t.Fatalf("walk of corrupted chain returned %d frames", len(frames))
	}
}
