// Package mpi implements the host-side MPI runtime the guest applications
// call into, structured after MPICH's three layers (Figure 2 of the
// paper):
//
//   - API: argument validation and error-handler dispatch (the only place
//     MPICH, LAM and LA-MPI raise user error handlers — §6.2);
//   - ADI: message matching, the unexpected-message queue, eager and
//     rendezvous protocols, and collectives built on point-to-point;
//   - Channel: byte-level packet framing over per-rank in-process streams,
//     standing in for ch_p4 over TCP.
//
// Every message a rank receives crosses the Channel layer as a raw byte
// slice.  The fault injector's hook runs on that slice immediately after
// it is read and before it is parsed — the precise injection point of
// §3.3 ("immediately after MPICH invokes the recv socket routine").
package mpi

import (
	"encoding/binary"
	"fmt"
)

// Packet kinds at the Channel level.  RTS/CTS/Barrier are control
// messages (header only); Eager/RdvData carry user payload.  The paper's
// Table 1 classifies traffic with exactly this control/data split.
const (
	KindEager   = 1 // eager data message
	KindRTS     = 2 // rendezvous request-to-send (control)
	KindCTS     = 3 // rendezvous clear-to-send (control)
	KindRdvData = 4 // rendezvous data message
	KindBarrier = 5 // barrier/dissemination token (control)
)

// HeaderBytes is the fixed Channel-level header size.  MPICH's ch_p4
// headers are 32-64 bytes (§4.2); we use 48.
const HeaderBytes = 48

// packetMagic guards framing integrity, standing in for ch_p4's internal
// consistency fields.
const packetMagic = 0x4D504948 // "MPIH"

// Packet is a parsed Channel-level message.
type Packet struct {
	Kind    uint8
	Src     int32
	Dst     int32
	Tag     int32
	Comm    int32
	Seq     uint32 // rendezvous sequence number
	Dtype   int32  // payload datatype (for reduction ops and profiling)
	Len     uint32 // payload length in bytes
	Payload []byte
}

// IsControl reports whether the packet is header-only control traffic.
func (p *Packet) IsControl() bool {
	return p.Kind == KindRTS || p.Kind == KindCTS || p.Kind == KindBarrier
}

// Marshal serializes the packet: a 48-byte header followed by the payload.
//
// Header layout (little-endian):
//
//	 0  magic   u32
//	 4  kind    u8   (3 bytes pad)
//	 8  src     i32
//	12  dst     i32
//	16  tag     i32
//	20  comm    i32
//	24  seq     u32
//	28  dtype   i32
//	32  len     u32
//	36  reserved (12 bytes)
func (p *Packet) Marshal() []byte {
	b := make([]byte, HeaderBytes+len(p.Payload))
	le := binary.LittleEndian
	le.PutUint32(b[0:], packetMagic)
	b[4] = p.Kind
	le.PutUint32(b[8:], uint32(p.Src))
	le.PutUint32(b[12:], uint32(p.Dst))
	le.PutUint32(b[16:], uint32(p.Tag))
	le.PutUint32(b[20:], uint32(p.Comm))
	le.PutUint32(b[24:], p.Seq)
	le.PutUint32(b[28:], uint32(p.Dtype))
	le.PutUint32(b[32:], uint32(len(p.Payload)))
	copy(b[HeaderBytes:], p.Payload)
	return b
}

// ParsePacket validates and decodes a received byte stream, with failure
// semantics modelled on ch_p4 over a stream socket:
//
//   - a corrupted type/magic field, an unknown message kind, or a source
//     rank outside the matching tables is an immediate library error —
//     MPICH aborts (the paper's Crash manifestation);
//   - the destination field is *not* validated: on a point-to-point
//     socket the receiver is implicit, so flips there are benign;
//   - a length field larger than the bytes actually framed makes the
//     stream reader wait for data that never comes — the packet (and
//     message) is silently lost (drop=true), which surfaces as a Hang;
//   - a length field smaller than the framed bytes leaves garbage in the
//     stream, an unrecoverable desync — a library error.
//
// Matching-only fields (tag, comm, seq) are deliberately not validated:
// corrupting them silently loses the message.
func ParsePacket(b []byte, self, worldSize int) (p *Packet, drop bool, err error) {
	if len(b) < HeaderBytes {
		return nil, false, fmt.Errorf("short packet: %d bytes", len(b))
	}
	le := binary.LittleEndian
	if m := le.Uint32(b[0:]); m != packetMagic {
		return nil, false, fmt.Errorf("bad packet type word 0x%08x", m)
	}
	p = &Packet{
		Kind:  b[4],
		Src:   int32(le.Uint32(b[8:])),
		Dst:   int32(le.Uint32(b[12:])),
		Tag:   int32(le.Uint32(b[16:])),
		Comm:  int32(le.Uint32(b[20:])),
		Seq:   le.Uint32(b[24:]),
		Dtype: int32(le.Uint32(b[28:])),
		Len:   le.Uint32(b[32:]),
	}
	switch p.Kind {
	case KindEager, KindRTS, KindCTS, KindRdvData, KindBarrier:
	default:
		return nil, false, fmt.Errorf("unknown packet kind %d", p.Kind)
	}
	if p.Src < 0 || int(p.Src) >= worldSize {
		return nil, false, fmt.Errorf("source rank %d out of range", p.Src)
	}
	framed := len(b) - HeaderBytes
	if int64(p.Len) > int64(framed) {
		return nil, true, nil // stream starved: message silently lost
	}
	if int(p.Len) < framed {
		return nil, false, fmt.Errorf("stream desync: length field %d under frames %d bytes",
			p.Len, framed)
	}
	if p.Len > 0 {
		p.Payload = b[HeaderBytes:]
	}
	return p, false, nil
}

// sysTag returns an internal tag for collective round r of operation op.
// User tags are validated to be < abi.MaxUserTag, so the ranges cannot
// collide.
func sysTag(op, r int32) int32 {
	return 0x40000000 + op<<8 + r
}

// Internal collective operation identifiers for sysTag.
const (
	collBarrier = iota
	collBcast
	collReduce
	collGather
	collScatter
	collAlltoall
	collAllgather
)
