package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformBuckets(t *testing.T) {
	// Chi-squared-ish smoke test: 10 buckets over 100k draws should each
	// hold close to 10k.
	r := New(99)
	const draws = 100000
	var buckets [10]int
	for i := 0; i < draws; i++ {
		buckets[r.Uint64n(10)]++
	}
	for i, c := range buckets {
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d holds %d of %d draws", i, c, draws)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(42)
	s := r.Split()
	// The split stream must not simply replay the parent.
	matches := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("%d collisions between parent and split streams", matches)
	}
}

func TestDeriveIsStableAndLabelled(t *testing.T) {
	base := New(5)
	a := base.Derive(1, 2)
	b := base.Derive(1, 2)
	c := base.Derive(2, 1)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive with identical labels must be deterministic")
	}
	a2 := base.Derive(1, 2)
	if a2.Uint64() == c.Uint64() {
		t.Fatal("Derive must distinguish label order")
	}
	// Derive must not advance the base generator.
	x, y := New(5), New(5)
	x.Derive(9)
	if x.Uint64() != y.Uint64() {
		t.Fatal("Derive advanced the receiver")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%64) + 1
		p := New(seed).Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	_ = r.Uint64()
	_ = r.Intn(5)
}

func TestBoolRoughlyFair(t *testing.T) {
	r := New(11)
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < 4500 || trues > 5500 {
		t.Fatalf("Bool() returned true %d/10000 times", trues)
	}
}
