package classify

import (
	"testing"

	"mpifault/internal/cluster"
	"mpifault/internal/vm"
)

func okRank() cluster.RankResult {
	return cluster.RankResult{Trap: &vm.Trap{Kind: vm.TrapExit, Code: 0}}
}

func resultWith(ranks ...cluster.RankResult) *cluster.Result {
	return &cluster.Result{
		Ranks:  ranks,
		Stdout: [][]byte{[]byte("out")},
		Files:  map[string][]byte{},
	}
}

func TestCorrectRun(t *testing.T) {
	res := resultWith(okRank(), okRank())
	golden := res.CanonicalOutput()
	if got := Classify(res, golden); got != Correct {
		t.Fatalf("got %v", got)
	}
}

func TestCrashFromSignal(t *testing.T) {
	for _, k := range []vm.TrapKind{vm.TrapSegv, vm.TrapIll, vm.TrapFpe, vm.TrapMPIFatal} {
		res := resultWith(okRank(),
			cluster.RankResult{Trap: &vm.Trap{Kind: k}})
		if got := Classify(res, nil); got != Crash {
			t.Fatalf("%v classified as %v", k, got)
		}
	}
}

func TestAppDetectedBeatsCrash(t *testing.T) {
	// One rank aborted deliberately while another died of the cascade;
	// the deliberate detection wins (§5.1 measurement procedure).
	res := resultWith(
		cluster.RankResult{Trap: &vm.Trap{Kind: vm.TrapSegv}},
		cluster.RankResult{Trap: &vm.Trap{Kind: vm.TrapAbort}},
	)
	if got := Classify(res, nil); got != AppDetected {
		t.Fatalf("got %v", got)
	}
}

func TestMPIDetected(t *testing.T) {
	res := resultWith(okRank(),
		cluster.RankResult{Trap: &vm.Trap{Kind: vm.TrapMPIHandler}})
	if got := Classify(res, nil); got != MPIDetected {
		t.Fatalf("got %v", got)
	}
}

func TestHang(t *testing.T) {
	res := resultWith(okRank(),
		cluster.RankResult{Trap: &vm.Trap{Kind: vm.TrapKilled}})
	res.HangDetected = true
	if got := Classify(res, nil); got != Hang {
		t.Fatalf("got %v", got)
	}
}

func TestCrashBeatsHang(t *testing.T) {
	res := resultWith(
		cluster.RankResult{Trap: &vm.Trap{Kind: vm.TrapSegv}},
		cluster.RankResult{Trap: &vm.Trap{Kind: vm.TrapKilled}},
	)
	res.HangDetected = true
	if got := Classify(res, nil); got != Crash {
		t.Fatalf("got %v", got)
	}
}

func TestIncorrectOutput(t *testing.T) {
	res := resultWith(okRank())
	if got := Classify(res, []byte("different")); got != Incorrect {
		t.Fatalf("got %v", got)
	}
}

func TestNonzeroExitIsIncorrect(t *testing.T) {
	res := resultWith(cluster.RankResult{Trap: &vm.Trap{Kind: vm.TrapExit, Code: 3}})
	if got := Classify(res, res.CanonicalOutput()); got != Incorrect {
		t.Fatalf("got %v", got)
	}
}

func TestKilledWithoutVerdictIsIncorrect(t *testing.T) {
	// A rank that vanished (killed) with no hang flag and no failing trap
	// elsewhere: the user sees a failed job without diagnostics.
	res := resultWith(okRank(),
		cluster.RankResult{Trap: &vm.Trap{Kind: vm.TrapKilled}})
	if got := Classify(res, res.CanonicalOutput()); got != Incorrect {
		t.Fatalf("got %v", got)
	}
}

func TestOutcomeStringsAndErrorFlag(t *testing.T) {
	names := map[Outcome]string{
		Correct: "Correct", Crash: "Crash", Hang: "Hang",
		Incorrect: "Incorrect", AppDetected: "App Detected",
		MPIDetected: "MPI Detected",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
		if o.IsError() != (o != Correct) {
			t.Errorf("%v IsError = %v", o, o.IsError())
		}
	}
}

func TestFileOutputDifferenceDetected(t *testing.T) {
	a := resultWith(okRank())
	a.Files["wavetoy.out"] = []byte("1.0\n2.0\n")
	golden := a.CanonicalOutput()
	b := resultWith(okRank())
	b.Files["wavetoy.out"] = []byte("1.0\n2.1\n")
	if got := Classify(b, golden); got != Incorrect {
		t.Fatalf("got %v", got)
	}
}

func TestParseOutcomeRoundTrip(t *testing.T) {
	for o := Outcome(0); o < NumOutcomes; o++ {
		got, err := ParseOutcome(o.String())
		if err != nil {
			t.Fatalf("ParseOutcome(%q): %v", o.String(), err)
		}
		if got != o {
			t.Errorf("ParseOutcome(%q) = %v, want %v", o.String(), got, o)
		}
	}
	for _, bad := range []string{"", "crash", "Outcome?", "Segfault"} {
		if _, err := ParseOutcome(bad); err == nil {
			t.Errorf("ParseOutcome(%q) accepted", bad)
		}
	}
}
