package abi

import "testing"

func TestDTSize(t *testing.T) {
	cases := map[int32]uint32{DTInt32: 4, DTF64: 8, DTByte: 1, 99: 0, -1: 0}
	for dt, want := range cases {
		if got := DTSize(dt); got != want {
			t.Errorf("DTSize(%d) = %d, want %d", dt, got, want)
		}
	}
}

func TestErrNames(t *testing.T) {
	if ErrName(ErrSuccess) != "MPI_SUCCESS" {
		t.Error("success name")
	}
	if ErrName(ErrRank) != "MPI_ERR_RANK" {
		t.Error("rank name")
	}
	if ErrName(1234) != "MPI_ERR_OTHER" {
		t.Error("unknown classes map to OTHER")
	}
}

func TestSyscallNumbersDistinct(t *testing.T) {
	nums := []int32{
		SysExit, SysAbort, SysWrite, SysOpen, SysWriteInt, SysWriteF64,
		SysWriteF64Arr, SysWriteBin, SysMalloc, SysFree, SysClock,
		SysMPIInit, SysMPIFinalize, SysMPICommRank, SysMPICommSize,
		SysMPISend, SysMPIRecv, SysMPIBarrier, SysMPIBcast, SysMPIReduce,
		SysMPIAllreduce, SysMPIGather, SysMPIAllgather, SysMPIScatter,
		SysMPIAlltoall, SysMPIErrhandlerSet, SysMPIWtime,
	}
	seen := map[int32]bool{}
	for _, n := range nums {
		if seen[n] {
			t.Fatalf("duplicate syscall number %d", n)
		}
		seen[n] = true
	}
}

func TestChunkTagsDistinct(t *testing.T) {
	if ChunkUser == ChunkMPI {
		t.Fatal("chunk tags must differ")
	}
}

func TestUserTagRange(t *testing.T) {
	if MaxUserTag < 32767 {
		t.Fatal("MPI_TAG_UB must be at least 32767")
	}
}
