package cluster

import (
	"bytes"
	"strings"
	"testing"

	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/guest"
	"mpifault/internal/image"
	"mpifault/internal/isa"
	"mpifault/internal/vm"
)

// buildHello links a single-rank program that prints a string and exits.
func buildHello(t *testing.T) *image.Image {
	t.Helper()
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	m.DataString("msg", "hello, world\n")
	f := m.Func("main")
	f.Prologue(0)
	f.CallArgs("MPI_Init")
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("msg"), asm.Imm(13))
	f.CallArgs("MPI_Finalize")
	f.Movi(isa.R0, 0)
	f.Epilogue()
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return im
}

func TestHelloSingleRank(t *testing.T) {
	im := buildHello(t)
	res := Run(Job{Image: im, Size: 1, Budget: 1_000_000})
	if res.HangDetected {
		t.Fatalf("unexpected hang: %s", res.HangCause)
	}
	rr := res.Ranks[0]
	if rr.Trap == nil || rr.Trap.Kind != 4 /* TrapExit */ {
		t.Fatalf("rank 0 trap = %+v", rr.Trap)
	}
	if got := string(res.Stdout[0]); got != "hello, world\n" {
		t.Fatalf("stdout = %q", got)
	}
}

// buildRing links a program in which every rank sends its rank number
// around a ring, reduces the sum, and rank 0 prints it.  It exercises
// p2p (eager), allreduce, barrier, malloc and console output.
func buildRing(t *testing.T, payloadWords int32) *image.Image {
	t.Helper()
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	m.DataString("sumis", "ring sum ")
	m.DataString("nl", "\n")
	m.BSS("sendbuf", uint32(4*payloadWords))
	m.BSS("recvbuf", uint32(4*payloadWords))
	m.BSS("myrank", 4)
	m.BSS("nproc", 4)
	m.BSS("sum", 4)

	f := m.Func("main")
	f.Prologue(0)
	f.CallArgs("MPI_Init")
	f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
	f.StSym("myrank", 0, isa.R0)
	f.CallArgs("MPI_Comm_size", asm.Imm(abi.CommWorld))
	f.StSym("nproc", 0, isa.R0)

	// Fill sendbuf[i] = rank for all payload words.
	f.LdSym(isa.R1, "myrank", 0)
	f.Movi(isa.R2, 0)
	fill, fillDone := f.NewLabel(), f.NewLabel()
	f.Label(fill)
	f.Cmpi(isa.R2, payloadWords*4)
	f.Bge(fillDone)
	f.MoviSym(isa.R3, "sendbuf", 0)
	f.Stx(isa.R3, isa.R2, 0, isa.R1)
	f.Addi(isa.R2, isa.R2, 4)
	f.Jmp(fill)
	f.Label(fillDone)

	// Even ranks send then recv; odd ranks recv then send (deadlock-safe).
	// dest = (rank+1)%size, src = (rank-1+size)%size
	f.LdSym(isa.R0, "myrank", 0)
	f.LdSym(isa.R1, "nproc", 0)
	f.Addi(isa.R2, isa.R0, 1)
	f.Rems(isa.R2, isa.R2, isa.R1) // dest
	f.Add(isa.R3, isa.R0, isa.R1)
	f.Addi(isa.R3, isa.R3, -1)
	f.Rems(isa.R3, isa.R3, isa.R1) // src
	f.StSym("sum", 0, isa.R2)      // stash dest in sum temporarily
	f.Push(isa.R3)                 // keep src on stack

	f.Andi(isa.R4, isa.R0, 1)
	odd, after := f.NewLabel(), f.NewLabel()
	f.Cmpi(isa.R4, 0)
	f.Bne(odd)
	// even: send then recv
	f.LdSym(isa.R2, "sum", 0)
	f.CallArgs("MPI_Send", asm.Sym("sendbuf"), asm.Imm(payloadWords),
		asm.Imm(abi.DTInt32), asm.Reg(isa.R2), asm.Imm(7), asm.Imm(abi.CommWorld))
	f.Ld(isa.R3, isa.SP, 0)
	f.CallArgs("MPI_Recv", asm.Sym("recvbuf"), asm.Imm(payloadWords),
		asm.Imm(abi.DTInt32), asm.Reg(isa.R3), asm.Imm(7), asm.Imm(abi.CommWorld), asm.Imm(0))
	f.Jmp(after)
	f.Label(odd)
	f.Ld(isa.R3, isa.SP, 0)
	f.CallArgs("MPI_Recv", asm.Sym("recvbuf"), asm.Imm(payloadWords),
		asm.Imm(abi.DTInt32), asm.Reg(isa.R3), asm.Imm(7), asm.Imm(abi.CommWorld), asm.Imm(0))
	f.LdSym(isa.R2, "sum", 0)
	f.CallArgs("MPI_Send", asm.Sym("sendbuf"), asm.Imm(payloadWords),
		asm.Imm(abi.DTInt32), asm.Reg(isa.R2), asm.Imm(7), asm.Imm(abi.CommWorld))
	f.Label(after)
	f.Pop(isa.R3)

	// recvbuf[0] now holds src's rank; allreduce-sum over all ranks gives
	// size*(size-1)/2.
	f.CallArgs("MPI_Allreduce", asm.Sym("recvbuf"), asm.Sym("sum"),
		asm.Imm(1), asm.Imm(abi.DTInt32), asm.Imm(abi.OpSum), asm.Imm(abi.CommWorld))
	f.CallArgs("MPI_Barrier", asm.Imm(abi.CommWorld))

	// Rank 0 prints the sum.
	f.LdSym(isa.R0, "myrank", 0)
	f.Cmpi(isa.R0, 0)
	skip := f.NewLabel()
	f.Bne(skip)
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("sumis"), asm.Imm(9))
	f.LdSym(isa.R1, "sum", 0)
	f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("nl"), asm.Imm(1))
	f.Label(skip)

	f.CallArgs("MPI_Finalize")
	f.Movi(isa.R0, 0)
	f.Epilogue()

	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return im
}

func TestRingEager(t *testing.T) {
	im := buildRing(t, 8) // 32-byte payload: eager path
	res := Run(Job{Image: im, Size: 6, Budget: 10_000_000})
	if res.HangDetected {
		t.Fatalf("unexpected hang: %s", res.HangCause)
	}
	for r, rr := range res.Ranks {
		if rr.Trap == nil || rr.Trap.Kind.String() != "exit" {
			t.Fatalf("rank %d trap = %v", r, rr.Trap)
		}
	}
	want := "ring sum 15\n" // 0+1+...+5
	if got := string(res.Stdout[0]); got != want {
		t.Fatalf("stdout = %q, want %q", got, want)
	}
}

func TestRingRendezvous(t *testing.T) {
	im := buildRing(t, 1024) // 4 KiB payload: rendezvous path
	res := Run(Job{Image: im, Size: 4, Budget: 50_000_000})
	if res.HangDetected {
		t.Fatalf("unexpected hang: %s", res.HangCause)
	}
	want := "ring sum 6\n"
	if got := string(res.Stdout[0]); got != want {
		t.Fatalf("stdout = %q, want %q", got, want)
	}
	// Rendezvous generates control traffic: RTS+CTS per large message.
	var ctl uint64
	for _, rr := range res.Ranks {
		ctl += rr.Stats.ControlMsgs
	}
	if ctl == 0 {
		t.Fatal("expected rendezvous control messages")
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A rank that receives a message nobody sends must be detected as a
	// distributed deadlock quickly, not via the wall-clock limit.
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	m.BSS("buf", 64)
	f := m.Func("main")
	f.Prologue(0)
	f.CallArgs("MPI_Init")
	f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
	f.Cmpi(isa.R0, 0)
	skip := f.NewLabel()
	f.Bne(skip)
	f.CallArgs("MPI_Recv", asm.Sym("buf"), asm.Imm(4), asm.Imm(abi.DTInt32),
		asm.Imm(1), asm.Imm(99), asm.Imm(abi.CommWorld), asm.Imm(0))
	f.Label(skip)
	f.CallArgs("MPI_Finalize")
	f.Movi(isa.R0, 0)
	f.Epilogue()
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	res := Run(Job{Image: im, Size: 2, Budget: 10_000_000})
	if !res.HangDetected {
		t.Fatal("expected hang detection")
	}
	if res.HangCause != "distributed deadlock" {
		t.Fatalf("hang cause = %q", res.HangCause)
	}
}

func TestCrashOnWildPointer(t *testing.T) {
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	f := m.Func("main")
	f.Prologue(0)
	f.Movi(isa.R1, 0x12) // unmapped address
	f.Ld(isa.R2, isa.R1, 0)
	f.Movi(isa.R0, 0)
	f.Epilogue()
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	res := Run(Job{Image: im, Size: 1, Budget: 1_000_000})
	tr := res.Ranks[0].Trap
	if tr == nil || !tr.IsSignal() {
		t.Fatalf("want SIGSEGV, got %v", tr)
	}
	if !bytes.Contains(res.Stderr[0], []byte("p4_error")) {
		t.Fatalf("stderr missing MPICH-style banner: %q", res.Stderr[0])
	}
}

func TestAppAbortIsDetected(t *testing.T) {
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	m.DataString("msg", "NaN detected\n")
	f := m.Func("main")
	f.Prologue(0)
	f.CallArgs("app_abort", asm.Sym("msg"), asm.Imm(13))
	f.Epilogue()
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	res := Run(Job{Image: im, Size: 1, Budget: 1_000_000})
	tr := res.Ranks[0].Trap
	if tr == nil || tr.Kind.String() != "abort" {
		t.Fatalf("want abort, got %v", tr)
	}
	if !strings.Contains(string(res.Stderr[0]), "NaN detected") {
		t.Fatalf("stderr = %q", res.Stderr[0])
	}
}

func TestMPIArgCheckRaisesHandler(t *testing.T) {
	// Registering an error handler and sending to a nonexistent rank must
	// produce the MPI-Detected manifestation (§6.2).
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	m.BSS("buf", 16)
	f := m.Func("main")
	f.Prologue(0)
	f.CallArgs("MPI_Init")
	f.CallArgs("MPI_Errhandler_set", asm.Imm(abi.CommWorld), asm.Imm(1))
	f.CallArgs("MPI_Send", asm.Sym("buf"), asm.Imm(1), asm.Imm(abi.DTInt32),
		asm.Imm(999), asm.Imm(0), asm.Imm(abi.CommWorld))
	f.CallArgs("MPI_Finalize")
	f.Movi(isa.R0, 0)
	f.Epilogue()
	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	res := Run(Job{Image: im, Size: 2, Budget: 1_000_000})
	// Both ranks raise the handler; whichever traps first kills the
	// other, so ask for the job-level verdict rather than rank 0's.
	tr := res.FirstFailure()
	if tr == nil || tr.Kind != vm.TrapMPIHandler {
		t.Fatalf("want mpi-handler, got %v", tr)
	}
}

func TestCollectivesGatherScatterAlltoall(t *testing.T) {
	// Exercise gather/scatter/alltoall through guest stubs on 4 ranks:
	// rank r contributes r+1; rank 0 gathers, scatters back doubled
	// values, and an alltoall rotates single words.  Rank 0 prints a
	// fingerprint of what it saw.
	b := asm.NewBuilder()
	guest.AddLibc(b)
	guest.AddLibMPI(b)
	m := b.Module("app", image.OwnerUser)
	m.DataString("nl", "\n")
	m.BSS("val", 4)
	m.BSS("gath", 4*8)
	m.BSS("scat", 4)
	m.BSS("a2as", 4*8)
	m.BSS("a2ar", 4*8)
	m.BSS("myrank", 4)

	f := m.Func("main")
	f.Prologue(0)
	f.CallArgs("MPI_Init")
	f.CallArgs("MPI_Comm_rank", asm.Imm(abi.CommWorld))
	f.StSym("myrank", 0, isa.R0)
	f.Addi(isa.R1, isa.R0, 1)
	f.StSym("val", 0, isa.R1)

	f.CallArgs("MPI_Gather", asm.Sym("val"), asm.Imm(1), asm.Imm(abi.DTInt32),
		asm.Sym("gath"), asm.Imm(0), asm.Imm(abi.CommWorld))

	// Rank 0 doubles each gathered value in place.
	f.LdSym(isa.R0, "myrank", 0)
	f.Cmpi(isa.R0, 0)
	notroot := f.NewLabel()
	f.Bne(notroot)
	f.Movi(isa.R2, 0)
	dl, dd := f.NewLabel(), f.NewLabel()
	f.Label(dl)
	f.Cmpi(isa.R2, 16)
	f.Bge(dd)
	f.MoviSym(isa.R3, "gath", 0)
	f.Ldx(isa.R4, isa.R3, isa.R2, 0)
	f.Add(isa.R4, isa.R4, isa.R4)
	f.Stx(isa.R3, isa.R2, 0, isa.R4)
	f.Addi(isa.R2, isa.R2, 4)
	f.Jmp(dl)
	f.Label(dd)
	f.Label(notroot)

	f.CallArgs("MPI_Scatter", asm.Sym("gath"), asm.Imm(1), asm.Imm(abi.DTInt32),
		asm.Sym("scat"), asm.Imm(0), asm.Imm(abi.CommWorld))

	// alltoall: send word j = rank*10 + j.
	f.LdSym(isa.R0, "myrank", 0)
	f.Muli(isa.R1, isa.R0, 10)
	f.Movi(isa.R2, 0) // byte offset
	al, ad := f.NewLabel(), f.NewLabel()
	f.Label(al)
	f.Cmpi(isa.R2, 16)
	f.Bge(ad)
	f.MoviSym(isa.R3, "a2as", 0)
	f.Shri(isa.R4, isa.R2, 2)
	f.Add(isa.R4, isa.R1, isa.R4)
	f.Stx(isa.R3, isa.R2, 0, isa.R4)
	f.Addi(isa.R2, isa.R2, 4)
	f.Jmp(al)
	f.Label(ad)
	f.CallArgs("MPI_Alltoall", asm.Sym("a2as"), asm.Imm(1), asm.Imm(abi.DTInt32),
		asm.Sym("a2ar"), asm.Imm(abi.CommWorld))

	// Rank 0: print scat and a2ar[3] (= 3*10+0 = 30).
	f.LdSym(isa.R0, "myrank", 0)
	f.Cmpi(isa.R0, 0)
	skip := f.NewLabel()
	f.Bne(skip)
	f.LdSym(isa.R1, "scat", 0)
	f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("nl"), asm.Imm(1))
	f.LdSym(isa.R1, "a2ar", 12)
	f.CallArgs("print_int", asm.Imm(abi.FdStdout), asm.Reg(isa.R1))
	f.CallArgs("print", asm.Imm(abi.FdStdout), asm.Sym("nl"), asm.Imm(1))
	f.Label(skip)

	f.CallArgs("MPI_Finalize")
	f.Movi(isa.R0, 0)
	f.Epilogue()

	im, err := b.Link(asm.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	res := Run(Job{Image: im, Size: 4, Budget: 50_000_000})
	if res.HangDetected {
		t.Fatalf("unexpected hang: %s", res.HangCause)
	}
	want := "2\n30\n" // scat = double(rank0's 1) = 2; a2ar[3] from rank 3 = 30
	if got := string(res.Stdout[0]); got != want {
		t.Fatalf("stdout = %q, want %q", got, want)
	}
}
