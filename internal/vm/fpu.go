package vm

import (
	"math"

	"mpifault/internal/isa"
)

// The floating-point stack follows x87 semantics closely enough for the
// paper's analysis to transfer:
//
//   - the stack top index lives in SWD bits 11-13, so status-word bit flips
//     corrupt register addressing;
//   - every slot carries a 2-bit tag (valid/zero/special/empty), and values
//     are *reconstructed from the tag on read*: a tag flipped from valid to
//     special yields NaN, valid to zero yields 0 — exactly the mechanism
//     §6.1.1 identifies for TWD faults ("changing one bit can turn a valid
//     number into NaN or zero");
//   - reading an empty slot yields the x87 "indefinite" quiet NaN.

// indefinite is the x87 QNaN floating-point indefinite value.
var indefinite = math.Float64frombits(0xFFF8000000000000)

// classify runs on every FP stack write, so it reads the class straight
// off the exponent field: ±0 is TagZero, an all-ones exponent (NaN, Inf)
// or an all-zeros exponent with a nonzero fraction (denormal) is
// TagSpecial, anything else is TagValid.
func classify(v float64) int {
	b := math.Float64bits(v) &^ (1 << 63)
	if b == 0 {
		return isa.TagZero
	}
	if e := b >> 52; e == 0 || e == 0x7FF {
		return isa.TagSpecial // NaN, Inf or denormal
	}
	return isa.TagValid
}

// fpush pushes v onto the FP stack.
func (m *Machine) fpush(v float64) {
	e := &m.FP
	top := (e.Top() - 1) & 7
	e.SetTop(top)
	e.Regs[top] = v
	e.SetTag(top, classify(v))
	e.FIP = m.PC
}

// fpop marks st0 empty and increments the top pointer.
func (m *Machine) fpop() {
	e := &m.FP
	top := e.Top()
	e.SetTag(top, isa.TagEmpty)
	e.SetTop((top + 1) & 7)
}

// fget reads st(i), honouring the tag word.  The valid-tag case stays
// small enough to inline into the interpreter loops; the reconstruction
// of zero/special/empty slots is outlined.
func (m *Machine) fget(i int) float64 {
	e := &m.FP
	p := (e.Top() + i) & 7
	if e.Tag(p) == isa.TagValid {
		return e.Regs[p]
	}
	return e.reconstruct(p)
}

// reconstruct materializes the value of a slot whose tag is not "valid".
func (e *FPEnv) reconstruct(p int) float64 {
	switch e.Tag(p) {
	case isa.TagEmpty:
		return indefinite
	case isa.TagZero:
		return 0
	case isa.TagSpecial:
		v := e.Regs[p]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return v
		}
		// The slot's stored value does not match its "special" tag — the
		// tag word was corrupted.  The x87 would interpret the register's
		// bits under the wrong class; the observable effect is a NaN.
		return indefinite
	default:
		return e.Regs[p]
	}
}

// fset overwrites st(i) in place (no stack motion).
func (m *Machine) fset(i int, v float64) {
	e := &m.FP
	p := (e.Top() + i) & 7
	e.Regs[p] = v
	e.SetTag(p, classify(v))
	e.FIP = m.PC
}

// FPDepth returns how many slots are currently non-empty, which the
// register-usage analysis uses to confirm the paper's observation that
// generated code keeps only a few live FP stack slots.
func (m *Machine) FPDepth() int {
	n := 0
	for p := 0; p < isa.NumFPReg; p++ {
		if m.FP.Tag(p) != isa.TagEmpty {
			n++
		}
	}
	return n
}
