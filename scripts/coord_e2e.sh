#!/bin/sh
# scripts/coord_e2e.sh — the cluster chaos gate CI runs: a faultcoord
# coordinator plus three faultcampaign workers, one of which is
# SIGKILLed mid-campaign, must still produce a final CSV byte-identical
# to the single-process run — and the coordinator's spool directory must
# reconstruct the same bytes through `faultmerge -coord`.
#
# The campaign runs with -trace-diff, which adds two assertions: the
# coordinator CSV must still match the single-process run *without*
# tracing (the digest recorder only observes), and every worker's logged
# golden-trace digest must equal the hash a single-process
# `faultcampaign -trace-out` computes — the trace is a pure function of
# (app, seed, ranks), identical on every machine.
#
# Environment:
#   BIN_DIR   directory with prebuilt faultcoord/faultcampaign/faultmerge
#             binaries (CI builds them once in a setup job); empty builds
#             them into a temp dir here
#   APP       guest application            (default wavetoy)
#   N         injections per region        (default 12)
#   SEED      campaign seed                (default 7)
#   KILL_AT   results ingested before the SIGKILL (default 8)
set -eu
cd "$(dirname "$0")/.."

APP=${APP:-wavetoy}
N=${N:-12}
SEED=${SEED:-7}
KILL_AT=${KILL_AT:-8}

WORK=$(mktemp -d)
PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill "$pid" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

if [ -n "${BIN_DIR:-}" ]; then
	FAULTCOORD=$BIN_DIR/faultcoord
	FAULTCAMPAIGN=$BIN_DIR/faultcampaign
	FAULTMERGE=$BIN_DIR/faultmerge
	chmod +x "$FAULTCOORD" "$FAULTCAMPAIGN" "$FAULTMERGE"
else
	echo "== building binaries =="
	go build -o "$WORK/bin/" ./cmd/faultcoord ./cmd/faultcampaign ./cmd/faultmerge
	FAULTCOORD=$WORK/bin/faultcoord
	FAULTCAMPAIGN=$WORK/bin/faultcampaign
	FAULTMERGE=$WORK/bin/faultmerge
fi

echo "== worker-mode flag conflicts exit nonzero =="
if "$FAULTCAMPAIGN" -worker http://127.0.0.1:1 -shard 0/2 2>"$WORK/conflict.err"; then
	echo "FAIL: -worker combined with -shard was accepted" >&2
	exit 1
fi
grep -q "drop -shard" "$WORK/conflict.err"
echo "refused with: $(cat "$WORK/conflict.err")"

echo "== single-process golden CSV =="
"$FAULTCAMPAIGN" -app "$APP" -n "$N" -seed "$SEED" -csv -quiet >"$WORK/golden.csv"

echo "== single-process traced CSV must be byte-identical =="
"$FAULTCAMPAIGN" -app "$APP" -n "$N" -seed "$SEED" -csv -quiet \
	-trace-diff -trace-out "$WORK/trace.json" >"$WORK/traced.csv"
diff -u "$WORK/golden.csv" "$WORK/traced.csv"
echo "reference golden trace: $(cat "$WORK/trace.json")"

echo "== coordinator + 3 workers (one will be SIGKILLed) =="
"$FAULTCOORD" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
	-app "$APP" -n "$N" -seed "$SEED" -trace-diff \
	-lease-size 8 -lease-ttl 2s -dir "$WORK/spool" \
	-wait -out "$WORK/final.csv" -status 5s &
COORD=$!
PIDS="$COORD"

i=0
while [ ! -s "$WORK/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "FAIL: coordinator never wrote its address file" >&2
		exit 1
	fi
	sleep 0.1
done
URL=$(cat "$WORK/addr")
echo "coordinator at $URL"

# w2 and w3 run chatty with captured stderr: their "golden trace digest"
# lines are the cross-machine trace-identity assertion below.
"$FAULTCAMPAIGN" -worker "$URL" -worker-name victim -quiet &
VICTIM=$!
"$FAULTCAMPAIGN" -worker "$URL" -worker-name w2 2>"$WORK/w2.log" &
W2=$!
"$FAULTCAMPAIGN" -worker "$URL" -worker-name w3 2>"$WORK/w3.log" &
W3=$!
PIDS="$COORD $VICTIM $W2 $W3"

ingested() {
	curl -fsS "$URL/status" 2>/dev/null \
		| grep -o '"results_ingested":[0-9]*' | cut -d: -f2 || echo 0
}

echo "== waiting for $KILL_AT ingested results, then SIGKILL the victim =="
i=0
while :; do
	got=$(ingested)
	if [ "${got:-0}" -ge "$KILL_AT" ]; then
		break
	fi
	i=$((i + 1))
	if [ "$i" -gt 600 ]; then
		echo "FAIL: campaign never reached $KILL_AT results (at ${got:-0})" >&2
		exit 1
	fi
	sleep 0.2
done
kill -9 "$VICTIM"
echo "victim SIGKILLed at ${got} results"

COORD_STATUS=0
wait "$COORD" || COORD_STATUS=$?
# The coordinator exits as soon as the campaign completes; a surviving
# worker racing its shutdown may never see the campaign-over answer, so
# reap them rather than wait for it (their exit status is not the
# assertion — the CSV bytes are).
PIDS=""
kill "$W2" "$W3" 2>/dev/null || true
wait "$W2" 2>/dev/null || true
wait "$W3" 2>/dev/null || true
if [ "$COORD_STATUS" -ne 0 ]; then
	echo "FAIL: coordinator exited $COORD_STATUS" >&2
	exit 1
fi

echo "== final CSV must be byte-identical to the single-process run =="
diff -u "$WORK/golden.csv" "$WORK/final.csv"
echo "coordinator CSV is byte-identical to the single-process campaign"

echo "== spool reconstruction through faultmerge -coord =="
"$FAULTMERGE" -csv -coord "$WORK/spool" >"$WORK/merged.csv"
diff -u "$WORK/golden.csv" "$WORK/merged.csv"
echo "faultmerge -coord reconstruction is byte-identical too"

echo "== worker golden-trace digests must match the single-process trace =="
WANT=$(grep -o '"hash":"[0-9a-f]*"' "$WORK/trace.json" | cut -d'"' -f4)
GOT=$(grep -h -o 'golden trace digest [0-9a-f]*' "$WORK"/w2.log "$WORK"/w3.log \
	| awk '{print $4}' | sort -u)
if [ -z "$GOT" ]; then
	echo "FAIL: no surviving worker logged a golden trace digest" >&2
	exit 1
fi
if [ "$GOT" != "$WANT" ]; then
	echo "FAIL: worker trace digest(s) [$GOT] != single-process $WANT" >&2
	exit 1
fi
echo "every worker computed golden trace digest $WANT"

echo "coord_e2e: OK"
