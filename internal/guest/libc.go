package guest

import (
	"mpifault/internal/abi"
	"mpifault/internal/asm"
	"mpifault/internal/image"
	"mpifault/internal/isa"
)

// AddLibc adds the guest C-runtime module.  It is owned by the user
// application (a statically linked libc is part of the binary's user
// text), so its code and data are legitimate fault-injection targets —
// just as the paper's applications carried their runtime support along.
func AddLibc(b *asm.Builder) *asm.Module {
	m := b.Module("libc", image.OwnerUser)

	// memcpy(dst, src, n): byte copy.
	{
		f := m.Func("memcpy")
		f.Prologue(0)
		f.LdArg(isa.R0, 0) // dst
		f.LdArg(isa.R1, 1) // src
		f.LdArg(isa.R2, 2) // n
		f.Movi(isa.R3, 0)
		loop, done := f.NewLabel(), f.NewLabel()
		f.Label(loop)
		f.Cmp(isa.R3, isa.R2)
		f.Bge(done)
		f.Ldb(isa.R4, isa.R1, isa.R3, 0)
		f.Stb(isa.R0, isa.R3, 0, isa.R4)
		f.Addi(isa.R3, isa.R3, 1)
		f.Jmp(loop)
		f.Label(done)
		f.Epilogue()
	}

	// memcpyw(dst, src, nwords): word copy, for large aligned buffers.
	{
		f := m.Func("memcpyw")
		f.Prologue(0)
		f.LdArg(isa.R0, 0)
		f.LdArg(isa.R1, 1)
		f.LdArg(isa.R2, 2) // word count
		f.Shli(isa.R2, isa.R2, 2)
		f.Movi(isa.R3, 0)
		loop, done := f.NewLabel(), f.NewLabel()
		f.Label(loop)
		f.Cmp(isa.R3, isa.R2)
		f.Bge(done)
		f.Ldx(isa.R4, isa.R1, isa.R3, 0)
		f.Stx(isa.R0, isa.R3, 0, isa.R4)
		f.Addi(isa.R3, isa.R3, 4)
		f.Jmp(loop)
		f.Label(done)
		f.Epilogue()
	}

	// memset(dst, c, n): byte fill.
	{
		f := m.Func("memset")
		f.Prologue(0)
		f.LdArg(isa.R0, 0)
		f.LdArg(isa.R1, 1)
		f.LdArg(isa.R2, 2)
		f.Movi(isa.R3, 0)
		loop, done := f.NewLabel(), f.NewLabel()
		f.Label(loop)
		f.Cmp(isa.R3, isa.R2)
		f.Bge(done)
		f.Stb(isa.R0, isa.R3, 0, isa.R1)
		f.Addi(isa.R3, isa.R3, 1)
		f.Jmp(loop)
		f.Label(done)
		f.Epilogue()
	}

	// malloc(size) -> addr (0 on exhaustion).
	{
		f := m.Func("malloc")
		f.Ld(isa.R0, isa.SP, 4)
		f.Sys(abi.SysMalloc)
		f.Ret()
	}

	// free(addr).
	{
		f := m.Func("free")
		f.Ld(isa.R0, isa.SP, 4)
		f.Sys(abi.SysFree)
		f.Ret()
	}

	// print(fd, addr, len): raw console/file write.
	{
		f := m.Func("print")
		f.Ld(isa.R0, isa.SP, 4)
		f.Ld(isa.R1, isa.SP, 8)
		f.Ld(isa.R2, isa.SP, 12)
		f.Sys(abi.SysWrite)
		f.Ret()
	}

	// print_int(fd, value): decimal text.
	{
		f := m.Func("print_int")
		f.Ld(isa.R0, isa.SP, 4)
		f.Ld(isa.R1, isa.SP, 8)
		f.Sys(abi.SysWriteInt)
		f.Ret()
	}

	// print_f64(fd, f64addr, precision): fixed-point text.
	{
		f := m.Func("print_f64")
		f.Ld(isa.R0, isa.SP, 4)
		f.Ld(isa.R1, isa.SP, 8)
		f.Ld(isa.R2, isa.SP, 12)
		f.Sys(abi.SysWriteF64)
		f.Ret()
	}

	// print_f64arr(fd, addr, count, precision): one value per line.
	{
		f := m.Func("print_f64arr")
		f.Ld(isa.R0, isa.SP, 4)
		f.Ld(isa.R1, isa.SP, 8)
		f.Ld(isa.R2, isa.SP, 12)
		f.Ld(isa.R3, isa.SP, 16)
		f.Sys(abi.SysWriteF64Arr)
		f.Ret()
	}

	// write_bin(fd, addr, len): raw binary output (the §7 alternative to
	// text output that exposes all low-order-bit corruption).
	{
		f := m.Func("write_bin")
		f.Ld(isa.R0, isa.SP, 4)
		f.Ld(isa.R1, isa.SP, 8)
		f.Ld(isa.R2, isa.SP, 12)
		f.Sys(abi.SysWriteBin)
		f.Ret()
	}

	// open(nameAddr, nameLen) -> fd.
	{
		f := m.Func("open")
		f.Ld(isa.R0, isa.SP, 4)
		f.Ld(isa.R1, isa.SP, 8)
		f.Sys(abi.SysOpen)
		f.Ret()
	}

	// app_abort(msgAddr, msgLen): print a diagnostic to stderr, then
	// abort with the Application-Detected exit code.  Every internal
	// consistency check in the workloads funnels through here, mirroring
	// the "print error messages to console and abort" behaviour §5.1
	// describes for NAMD and CAM.
	{
		f := m.Func("app_abort")
		f.Movi(isa.R0, abi.FdStderr)
		f.Ld(isa.R1, isa.SP, 4)
		f.Ld(isa.R2, isa.SP, 8)
		f.Sys(abi.SysWrite)
		f.Movi(isa.R0, abi.ExitAppDetected)
		f.Sys(abi.SysAbort)
		f.Ret() // unreachable
	}

	// fchecknan(f64addr, msgAddr, msgLen): NaN/Inf consistency check —
	// the guard NAMD and CAM apply to key variables (§6.2).
	{
		f := m.Func("fchecknan")
		f.Prologue(0)
		f.LdArg(isa.R0, 0)
		f.Fld(isa.R0, 0)
		f.Fxam()
		bad := f.NewLabel()
		ok := f.NewLabel()
		f.Beq(bad)
		f.Fstp(isa.R0, 0) // pop (store back unchanged)
		f.Jmp(ok)
		f.Label(bad)
		f.LdArg(isa.R1, 1)
		f.LdArg(isa.R2, 2)
		f.CallArgs("app_abort", asm.Reg(isa.R1), asm.Reg(isa.R2))
		f.Label(ok)
		f.Epilogue()
	}

	return m
}
