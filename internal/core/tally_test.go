package core

import (
	"testing"
	"testing/quick"
	"time"

	"mpifault/internal/classify"
	"mpifault/internal/mpi"
)

func TestTallyMath(t *testing.T) {
	tl := Tally{Region: RegionText, Executions: 500}
	tl.Outcomes[classify.Correct] = 400
	tl.Outcomes[classify.Crash] = 60
	tl.Outcomes[classify.Hang] = 20
	tl.Outcomes[classify.Incorrect] = 20
	if tl.Errors() != 100 {
		t.Fatalf("errors = %d", tl.Errors())
	}
	if got := tl.ErrorRate(); got != 20 {
		t.Fatalf("error rate = %v", got)
	}
	if got := tl.ManifestPercent(classify.Crash); got != 60 {
		t.Fatalf("crash%% = %v", got)
	}
	if got := tl.ManifestPercent(classify.Hang); got != 20 {
		t.Fatalf("hang%% = %v", got)
	}
}

func TestTallyEmptyIsSafe(t *testing.T) {
	var tl Tally
	if tl.ErrorRate() != 0 || tl.ManifestPercent(classify.Crash) != 0 {
		t.Fatal("empty tally must not divide by zero")
	}
	tl.Executions = 10
	tl.Outcomes[classify.Correct] = 10
	if tl.ManifestPercent(classify.Crash) != 0 {
		t.Fatal("all-correct tally must report 0% manifestations")
	}
}

// TestTallyInvariantsProperty: manifestation percentages over all error
// classes always sum to ~100 when any error exists.
func TestTallyInvariantsProperty(t *testing.T) {
	f := func(c, h, i, a, m, ok uint8) bool {
		tl := Tally{Region: RegionData}
		tl.Outcomes[classify.Crash] = int(c % 50)
		tl.Outcomes[classify.Hang] = int(h % 50)
		tl.Outcomes[classify.Incorrect] = int(i % 50)
		tl.Outcomes[classify.AppDetected] = int(a % 50)
		tl.Outcomes[classify.MPIDetected] = int(m % 50)
		tl.Outcomes[classify.Correct] = int(ok % 50)
		for _, n := range tl.Outcomes {
			tl.Executions += n
		}
		if tl.Errors() == 0 {
			return tl.ErrorRate() == 0
		}
		sum := 0.0
		for o := classify.Outcome(0); o < classify.NumOutcomes; o++ {
			if o != classify.Correct {
				sum += tl.ManifestPercent(o)
			}
		}
		return sum > 99.999 && sum < 100.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResultTallyLookup(t *testing.T) {
	res := &Result{Tallies: []Tally{{Region: RegionHeap, Executions: 3}}}
	if tl, ok := res.Tally(RegionHeap); !ok || tl.Executions != 3 {
		t.Fatal("lookup failed")
	}
	if _, ok := res.Tally(RegionText); ok {
		t.Fatal("missing region reported present")
	}
}

func TestCampaignSubsetAndProgress(t *testing.T) {
	im, ranks := buildApp(t, "wavetoy")
	var calls int
	res, err := Run(Config{
		Image: im, Ranks: ranks,
		Injections: 3,
		Regions:    []Region{RegionFPReg, RegionHeap},
		Seed:       5,
		Progress:   func(done, total int) { calls = done; _ = total },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tallies) != 2 {
		t.Fatalf("tallies = %d", len(res.Tallies))
	}
	if calls != 6 {
		t.Fatalf("progress callback saw %d completions, want 6", calls)
	}
	if res.Experiments != nil {
		t.Fatal("experiments kept without KeepExperiments")
	}
	if _, ok := res.Tally(RegionFPReg); !ok {
		t.Fatal("requested region missing")
	}
	if _, ok := res.Tally(RegionText); ok {
		t.Fatal("unrequested region present")
	}
}

func TestGoldenOddWorldSize(t *testing.T) {
	// The workloads read the true world size from MPI_Comm_size, so the
	// same binary must run at sizes other than its build-time default
	// (including odd sizes, where the parity-ordered halo exchange has
	// an unpaired rank).
	im, _ := buildApp(t, "wavetoy")
	g, err := RunGolden(im, 3, mpi.Config{}, 30*time.Second)
	if err != nil {
		t.Fatalf("3-rank golden failed: %v", err)
	}
	if len(g.Instrs) != 3 {
		t.Fatalf("instrs for %d ranks", len(g.Instrs))
	}
}
