#!/bin/sh
# scripts/adaptive_gate.sh — the adaptive-efficiency gate.
#
# Runs the full paper-contract adaptive campaign (d=4.9% at 95%
# confidence, all eight regions) on each app and checks the efficiency
# claim the optimization was built for: the sequential-stopping planner
# must reach the contract at no more than RATIO_MAX (default 0.6x) of
# the fixed-n experiment count on at least MIN_PASS (default 2) of the
# apps.  The per-app ratio comes from the campaign's own summary line
#   <app>: adaptive stopping converged in R rounds: X experiments vs
#   Y fixed-n (Z.ZZx of the worst case)
# which faultcampaign prints to stderr in -csv mode.
#
# The gate also asserts the determinism contract at the CLI level: the
# first app is run twice and the CSVs must be byte-identical.
#
# Usage: scripts/adaptive_gate.sh
#   APPS       space-separated app list   (default: wavetoy minimd minicam)
#   D          CI half-width target       (default: 0.049, the paper's)
#   RATIO_MAX  max adaptive/fixed ratio   (default: 0.6)
#   MIN_PASS   apps that must meet it     (default: 2)
set -eu
cd "$(dirname "$0")/.."

APPS=${APPS:-"wavetoy minimd minicam"}
D=${D:-0.049}
RATIO_MAX=${RATIO_MAX:-0.6}
MIN_PASS=${MIN_PASS:-2}
SEED=${SEED:-1}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/faultcampaign" ./cmd/faultcampaign

passed=0
total=0
first=""
for app in $APPS; do
    total=$((total + 1))
    [ -n "$first" ] || first=$app
    echo "== $app: adaptive campaign at d=$D =="
    "$WORK/faultcampaign" -app "$app" -adaptive -d "$D" -seed "$SEED" \
        -csv -quiet > "$WORK/$app.csv" 2> "$WORK/$app.err"
    summary=$(grep "adaptive stopping converged" "$WORK/$app.err" | tail -1)
    if [ -z "$summary" ]; then
        echo "FAIL: $app printed no convergence summary" >&2
        cat "$WORK/$app.err" >&2
        exit 1
    fi
    echo "$summary"
    executed=$(echo "$summary" | sed -n 's/.*: \([0-9][0-9]*\) experiments vs.*/\1/p')
    fixed=$(echo "$summary" | sed -n 's/.*vs \([0-9][0-9]*\) fixed-n.*/\1/p')
    if [ -z "$executed" ] || [ -z "$fixed" ]; then
        echo "FAIL: could not parse the summary line" >&2
        exit 1
    fi
    # ratio <= RATIO_MAX without floating point: executed*100 <= fixed*max*100
    maxpct=$(echo "$RATIO_MAX" | awk '{printf "%d", $1 * 100}')
    if [ $((executed * 100)) -le $((fixed * maxpct)) ]; then
        echo "   $app: ${executed}/${fixed} experiments — within ${RATIO_MAX}x"
        passed=$((passed + 1))
    else
        echo "   $app: ${executed}/${fixed} experiments — above ${RATIO_MAX}x"
    fi
done

echo "== rerun determinism ($first) =="
"$WORK/faultcampaign" -app "$first" -adaptive -d "$D" -seed "$SEED" \
    -csv -quiet > "$WORK/$first.rerun.csv" 2> /dev/null
diff -u "$WORK/$first.csv" "$WORK/$first.rerun.csv" \
    || { echo "FAIL: adaptive rerun CSV differs" >&2; exit 1; }
echo "   byte-identical"

echo "== verdict: $passed/$total apps within ${RATIO_MAX}x (need $MIN_PASS) =="
if [ "$passed" -lt "$MIN_PASS" ]; then
    echo "FAIL: adaptive sampling did not meet the efficiency target" >&2
    exit 1
fi
echo "PASS"
