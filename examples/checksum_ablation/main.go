// Checksum ablation: §6.2 and §7 of the paper quantify NAMD's
// application-level message checksums — they detect 46 % of manifested
// message faults at about 3 % runtime overhead.  This example runs the
// NAMD analogue with and without its checksums and reports both numbers.
//
//	go run ./examples/checksum_ablation
package main

import (
	"fmt"
	"log"
	"time"

	"mpifault/internal/apps"
	"mpifault/internal/classify"
	"mpifault/internal/core"
	"mpifault/internal/mpi"
)

func measure(withChecksums bool, injections int) (overheadInstrs uint64, tally core.Tally) {
	app, err := apps.Get("minimd")
	if err != nil {
		log.Fatal(err)
	}
	cfg := app.Default
	cfg.Checksums = withChecksums
	im, err := app.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	golden, err := core.RunGolden(im, cfg.Ranks, mpi.Config{}, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(core.Config{
		Image: im, Ranks: cfg.Ranks,
		Injections: injections,
		Regions:    []core.Region{core.RegionMessage},
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}
	t, _ := res.Tally(core.RegionMessage)
	return golden.MaxInstrs(), t
}

func main() {
	log.SetFlags(0)
	const injections = 150

	instrOn, tallyOn := measure(true, injections)
	instrOff, tallyOff := measure(false, injections)

	overhead := 100 * (float64(instrOn) - float64(instrOff)) / float64(instrOff)
	fmt.Printf("checksum runtime overhead: %.1f%% (paper: ~3%% for NAMD)\n\n", overhead)

	show := func(label string, t core.Tally) {
		fmt.Printf("%-20s error rate %5.1f%%  of manifested: %4.0f%% app-detected, %4.0f%% incorrect\n",
			label, t.ErrorRate(),
			t.ManifestPercent(classify.AppDetected),
			t.ManifestPercent(classify.Incorrect))
	}
	show("with checksums:", tallyOn)
	show("without checksums:", tallyOff)
	fmt.Println("\n(the paper's Table 3: NAMD detects 46% of manifested message faults;")
	fmt.Println(" removing the checks converts those detections into silent corruption)")
}
