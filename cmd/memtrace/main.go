// Command memtrace regenerates Tables 5-7 of the paper: the working-set
// curves (text accesses; data+BSS+heap loads) that explain the low error
// rates of memory fault injection.  The paper instruments one randomly
// selected MPI process with Valgrind; here the equivalent tracer attaches
// to a chosen rank of the simulated cluster.
//
// Usage:
//
//	memtrace [-app wavetoy|minimd|minicam|all] [-rank 0] [-samples 24]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mpifault/internal/apps"
	"mpifault/internal/cluster"
	"mpifault/internal/report"
	"mpifault/internal/trace"
)

func main() {
	app := flag.String("app", "all", "application to trace")
	rank := flag.Int("rank", 0, "rank to attach the tracer to")
	samples := flag.Int("samples", 24, "number of sample points on the block-count axis")
	stores := flag.Bool("stores", false, "also count stores as data accesses (the paper counts loads only)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("memtrace: ")

	names := []string{"wavetoy", "minimd", "minicam"}
	if *app != "all" {
		names = []string{*app}
	}

	for _, name := range names {
		a, err := apps.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		im, err := a.Build(a.Default)
		if err != nil {
			log.Fatalf("build %s: %v", name, err)
		}
		tr := trace.New()
		tr.TrackStores = *stores
		res := cluster.Run(cluster.Job{
			Image: im, Size: a.Default.Ranks,
			Tracer: tr, TraceRank: *rank,
			WallLimit: 60 * time.Second,
		})
		if res.HangDetected {
			log.Fatalf("%s: traced run hung: %s", name, res.HangCause)
		}
		series := tr.Analyze(im, res.Ranks[*rank].HeapUsed, *samples)
		report.WriteWorkingSet(os.Stdout, fmt.Sprintf("%s, rank %d", name, *rank), series)
		fmt.Println()
	}
}
