package vm_test

// Differential check for the execution tiers: the compiled superblock
// tier, the per-instruction interpreter over the predecoded table, and
// full byte-decode on every fetch must be indistinguishable, instruction
// for instruction — on clean runs of all three guest applications and on
// runs whose text segment is corrupted mid-flight by the injector's
// RawWrite (the case the dirty-slot bitmap and block invalidation exist
// for).

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mpifault/internal/apps"
	"mpifault/internal/cluster"
	"mpifault/internal/mpi"
	"mpifault/internal/vm"
)

// pcTrace folds every executed PC into an order-sensitive FNV-style hash,
// so two runs agree only if they fetch the same instructions in the same
// order.
type pcTrace struct {
	hash  uint64
	count uint64
}

func (t *pcTrace) Exec(pc uint32) {
	t.hash = (t.hash ^ uint64(pc)) * 1099511628211
	t.count++
}

func (t *pcTrace) Load(addr uint32, size int)  {}
func (t *pcTrace) Store(addr uint32, size int) {}

// diffRun is everything observable about one execution mode.
type diffRun struct {
	instrs []uint64
	traps  []string
	output []byte
	hash   uint64
	fetch  uint64
	hung   bool
}

// Execution modes under test.
const (
	modeSuperblock = iota // compiled superblock tier (the default)
	modeInterp            // per-instruction Step over the predecoded table
	modeByteDecode        // full byte-decode on every fetch
)

// runDiff executes the app once in the given execution mode, optionally
// with a set of text bits flipped on rank 1 after a fixed instruction
// count.
func runDiff(t *testing.T, name string, mode int, flipText bool) diffRun {
	t.Helper()
	a, err := apps.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	im, err := a.Build(a.Default)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	tr := &pcTrace{}
	job := cluster.Job{
		Image:     im,
		Size:      a.Default.Ranks,
		WallLimit: 60 * time.Second,
		Tracer:    tr,
		TraceRank: 1,
		Setup: func(rank int, m *vm.Machine, _ *mpi.Proc) {
			switch mode {
			case modeInterp:
				m.DisableSuperblocks()
			case modeByteDecode:
				m.DisablePredecode()
			}
			if flipText && rank == 1 {
				m.TriggerAt = 5000
				m.TriggerFn = flipTextBits
			}
		},
	}
	res := cluster.Run(job)
	out := diffRun{
		output: res.CanonicalOutput(),
		hash:   tr.hash,
		fetch:  tr.count,
		hung:   res.HangDetected,
	}
	for r := range res.Ranks {
		out.instrs = append(out.instrs, res.Ranks[r].Instrs)
		trap := "none"
		if tp := res.Ranks[r].Trap; tp != nil {
			trap = fmt.Sprintf("%v@%08x", tp.Kind, tp.PC)
		}
		out.traps = append(out.traps, trap)
	}
	return out
}

// flipTextBits corrupts a deterministic spread of text bytes, covering
// opcode, operand and immediate slots of several instruction words.
func flipTextBits(m *vm.Machine) {
	lo, hi, ok := m.SegmentRange("text")
	if !ok {
		panic("no text segment")
	}
	size := hi - lo
	for i, spec := range []struct {
		off uint32 // fraction of the text segment, in 1/64ths
		bit uint
	}{
		{8, 0}, {19, 7}, {32, 3}, {45, 1}, {57, 5},
	} {
		addr := lo + spec.off*(size/64)
		addr += uint32(i) % 8 // stagger across the 8 slot bytes
		b, ok := m.RawRead(addr, 1)
		if !ok {
			panic("text read failed")
		}
		b[0] ^= 1 << spec.bit
		if !m.RawWrite(addr, b) {
			panic("text write failed")
		}
	}
}

func (a diffRun) compare(t *testing.T, b diffRun, label string) {
	t.Helper()
	if a.hung != b.hung {
		t.Errorf("%s: hang disagreement: predecoded=%v byte-decoded=%v", label, a.hung, b.hung)
	}
	for r := range a.instrs {
		if a.instrs[r] != b.instrs[r] {
			t.Errorf("%s: rank %d retired %d instrs predecoded, %d byte-decoded",
				label, r, a.instrs[r], b.instrs[r])
		}
		if a.traps[r] != b.traps[r] {
			t.Errorf("%s: rank %d trap %s predecoded, %s byte-decoded",
				label, r, a.traps[r], b.traps[r])
		}
	}
	if !bytes.Equal(a.output, b.output) {
		t.Errorf("%s: canonical output differs (%d vs %d bytes)",
			label, len(a.output), len(b.output))
	}
	if a.fetch != b.fetch || a.hash != b.hash {
		t.Errorf("%s: traced rank fetched %d PCs (hash %016x) predecoded, %d (hash %016x) byte-decoded",
			label, a.fetch, a.hash, b.fetch, b.hash)
	}
}

func TestPredecodeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all three guest apps three times")
	}
	for _, name := range []string{"wavetoy", "minimd", "minicam"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sb := runDiff(t, name, modeSuperblock, false)
			interp := runDiff(t, name, modeInterp, false)
			raw := runDiff(t, name, modeByteDecode, false)
			sb.compare(t, interp, "clean superblock-vs-interp")
			sb.compare(t, raw, "clean superblock-vs-bytedecode")
			if sb.fetch == 0 {
				t.Fatal("tracer saw no fetches; test is vacuous")
			}
		})
	}
}

func TestPredecodeDifferentialAfterTextFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all three guest apps three times")
	}
	for _, name := range []string{"wavetoy", "minimd", "minicam"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sb := runDiff(t, name, modeSuperblock, true)
			interp := runDiff(t, name, modeInterp, true)
			raw := runDiff(t, name, modeByteDecode, true)
			sb.compare(t, interp, "text-flip superblock-vs-interp")
			sb.compare(t, raw, "text-flip superblock-vs-bytedecode")
		})
	}
}
