package profile

import (
	"testing"

	"mpifault/internal/apps"
	"mpifault/internal/mpi"
)

func TestMeasureWavetoy(t *testing.T) {
	a, err := apps.Get("wavetoy")
	if err != nil {
		t.Fatal(err)
	}
	im, err := a.Build(a.Default)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Measure("wavetoy", im, a.Default.Ranks, mpi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.TextBytes == 0 || p.DataBytes == 0 || p.BSSBytes == 0 {
		t.Fatalf("static sections empty: %+v", p)
	}
	if p.UserText+p.MPIText != p.TextBytes {
		t.Fatalf("user %d + mpi %d != text %d", p.UserText, p.MPIText, p.TextBytes)
	}
	if p.MPIText == 0 {
		t.Fatal("MPI library text missing")
	}
	if p.HeapStable == 0 {
		t.Fatal("no user heap recorded (wavetoy allocates its grids)")
	}
	if p.StackBytes == 0 {
		t.Fatal("no stack depth recorded")
	}
	if p.MsgBytesMin == 0 || p.MsgBytesMax < p.MsgBytesMin {
		t.Fatalf("message volume range [%d, %d]", p.MsgBytesMin, p.MsgBytesMax)
	}
	// Wavetoy must be payload-dominated (Table 1: 94% user).
	if p.UserPct < 80 {
		t.Fatalf("wavetoy user share %.1f%%", p.UserPct)
	}
	if p.HeaderPct+p.UserPct < 99.9 || p.HeaderPct+p.UserPct > 100.1 {
		t.Fatalf("shares do not sum to 100: %v + %v", p.HeaderPct, p.UserPct)
	}
	if p.GoldenInstrs == 0 {
		t.Fatal("no instruction count")
	}
}

func TestMeasureContrastAcrossApps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all three applications")
	}
	shares := map[string]float64{}
	for _, name := range []string{"wavetoy", "minimd", "minicam"} {
		a, err := apps.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		im, err := a.Build(a.Default)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Measure(name, im, a.Default.Ranks, mpi.Config{})
		if err != nil {
			t.Fatal(err)
		}
		shares[name] = p.HeaderPct
	}
	// Table 1's key contrast: CAM is control-dominated, the other two are not.
	if shares["minicam"] < shares["wavetoy"]+20 || shares["minicam"] < shares["minimd"]+20 {
		t.Fatalf("minicam header share %.1f%% should far exceed wavetoy %.1f%% and minimd %.1f%%",
			shares["minicam"], shares["wavetoy"], shares["minimd"])
	}
}
