package report

import (
	"fmt"
	"io"
	"sort"

	"mpifault/internal/classify"
	"mpifault/internal/core"
)

// WriteLocalization renders the trace-diff localization summary: for
// each outcome a divergence record can explain (Incorrect, Hang,
// Crash), how many experiments the golden-trace diff localized to a
// first divergent message, how far into the message stream that
// divergence sat, and how many instructions after the injection it
// surfaced.  Only campaigns run with -trace-diff produce divergence
// records; if no experiment carries one, nothing is printed.
func WriteLocalization(w io.Writer, experiments []core.Experiment) {
	type row struct {
		total     int
		localized int
		msgIdx    []uint64
		sinceInj  []uint64
	}
	outcomes := []classify.Outcome{classify.Incorrect, classify.Hang, classify.Crash}
	rows := make(map[classify.Outcome]*row, len(outcomes))
	for _, o := range outcomes {
		rows[o] = &row{}
	}
	any := false
	for i := range experiments {
		e := &experiments[i]
		r, ok := rows[e.Outcome]
		if !ok {
			continue
		}
		r.total++
		d := e.Divergence()
		if d == nil {
			continue
		}
		any = true
		r.localized++
		r.msgIdx = append(r.msgIdx, uint64(d.MsgIndex))
		if d.InstrsSinceInjection > 0 {
			r.sinceInj = append(r.sinceInj, d.InstrsSinceInjection)
		}
	}
	if !any {
		return
	}

	fmt.Fprintf(w, "Trace-diff localization (first divergence vs golden message stream):\n")
	fmt.Fprintf(w, "  %-12s %8s %10s %10s %12s %14s\n",
		"outcome", "total", "localized", "fraction", "med msg idx", "med instrs-inj")
	for _, o := range outcomes {
		r := rows[o]
		if r.total == 0 {
			continue
		}
		frac := "-"
		if r.total > 0 {
			frac = fmt.Sprintf("%.1f%%", 100*float64(r.localized)/float64(r.total))
		}
		fmt.Fprintf(w, "  %-12s %8d %10d %10s %12s %14s\n",
			o, r.total, r.localized, frac,
			medianLabel(r.msgIdx), medianLabel(r.sinceInj))
	}
}

// medianLabel renders the median of vs, or "-" when there is nothing to
// take a median of.
func medianLabel(vs []uint64) string {
	if len(vs) == 0 {
		return "-"
	}
	sorted := append([]uint64(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return fmt.Sprintf("%d", sorted[len(sorted)/2])
}
