// Command faultcoord is the campaign-as-a-service control plane: a
// long-running coordinator that splits a fault-injection campaign into
// bounded leases, hands them to `faultcampaign -worker <url>` processes
// via pull-based work-stealing, ingests the JSONL journal segments the
// workers stream back, and serves the live cluster view.
//
// Usage:
//
//	faultcoord -addr :8700 [-addr-file path]
//	           [-app wavetoy -n 500 -seed 1 [-regions reg,fp,...]
//	            [-equivalence annotate|prune|audit] [-trace-diff]]
//	           [-lease-size 32] [-lease-ttl 15s]
//	           [-dir spool/] [-wait] [-out final.csv]
//	           [-status 5s] [-quiet]
//
// With campaign flags (-app and friends) the campaign is loaded at
// startup; without them the coordinator waits for a POST /api/campaign.
// Workers need nothing but the URL: every lease grant carries the full
// spec, so `faultcampaign -worker http://host:8700` on any number of
// machines is the whole cluster.  Slow or dead workers forfeit their
// leases after -lease-ttl without a heartbeat; the lease returns to the
// queue and the next worker re-runs it, with duplicate results resolved
// idempotently — every experiment's outcome is a pure function of
// (seed, region, index), so the re-run must agree byte for byte.
//
// -wait blocks until the campaign completes, writes the final CSV to
// -out (default stdout) and exits.  The CSV is byte-identical to
// `faultcampaign -csv -quiet` at the same parameters — the determinism
// gate CI enforces with a plain diff, even when a worker is SIGKILLed
// mid-campaign.  -dir spools every ingested segment to disk in the
// layout `faultmerge -coord <dir>` reconstructs the campaign from.
//
// Exit status (with -wait): 0 on a clean campaign, 1 when the campaign
// failed or any experiment failed to classify.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpifault/internal/coord"
	"mpifault/internal/core"
	"mpifault/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8700", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the coordinator base URL to this file once listening (for scripts that use -addr :0)")
	app := flag.String("app", "", "campaign application (wavetoy, minimd, minicam); empty waits for POST /api/campaign")
	n := flag.Int("n", 500, "injections per region")
	seed := flag.Uint64("seed", 1, "campaign seed (same seed => identical campaign)")
	regions := flag.String("regions", "", "comma-separated region subset (reg,fp,bss,data,stack,text,heap,message)")
	equivalence := flag.String("equivalence", "", "drive register injections by the static equivalence partition (annotate, prune or audit)")
	traceDiff := flag.Bool("trace-diff", false, "make every worker record message-digest streams and localize Incorrect/Hang/Crash outcomes against the golden trace (faultcampaign -trace-diff)")
	adaptive := flag.Bool("adaptive", false, "adaptive sequential stopping: cut leases in deterministic planner rounds and stop each region at the CI target instead of the fixed -n (faultcampaign -adaptive)")
	targetD := flag.Float64("d", core.DefaultTargetHalfWidth, "adaptive stopping target: per-region CI half-width (requires -adaptive)")
	confidence := flag.Float64("confidence", core.DefaultConfidence, "adaptive CI confidence level (requires -adaptive)")
	roundSize := flag.Int("round", 0, "adaptive per-region per-round experiment bound (0 = default; requires -adaptive)")
	leaseSize := flag.Int("lease-size", coord.DefaultLeaseSize, "plan entries per lease (small leases steal cheaply, large ones amortize the worker's golden run)")
	leaseTTL := flag.Duration("lease-ttl", coord.DefaultLeaseTTL, "lease deadline; a worker that has not heartbeat within this long forfeits the lease")
	dir := flag.String("dir", "", "spool ingested journal segments to this directory (merge with faultmerge -coord)")
	wait := flag.Bool("wait", false, "block until the campaign completes, write the final CSV and exit")
	out := flag.String("out", "", "write the final CSV to this file instead of stdout (with -wait)")
	statusEvery := flag.Duration("status", 0, "print a one-line cluster status to stderr at this interval (e.g. 5s; 0 = off)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("faultcoord: ")

	metrics := telemetry.New()
	co := coord.New(coord.Config{Metrics: metrics, Dir: *dir})

	nFlagSet := false
	var adaptiveOnly []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "n":
			nFlagSet = true
		case "d", "confidence", "round":
			adaptiveOnly = append(adaptiveOnly, "-"+f.Name)
		}
	})
	if *adaptive && nFlagSet {
		log.Print("-adaptive sizes the campaign itself (stopping at the CI target); it cannot be combined with -n")
		return 1
	}
	if !*adaptive && len(adaptiveOnly) > 0 {
		log.Printf("%s require -adaptive", strings.Join(adaptiveOnly, ", "))
		return 1
	}

	if *app != "" {
		var shorts []string
		if *regions != "" {
			for _, s := range strings.Split(*regions, ",") {
				r, err := core.ParseRegion(strings.TrimSpace(s))
				if err != nil {
					log.Print(err)
					return 1
				}
				shorts = append(shorts, r.Short())
			}
		}
		spec := coord.Spec{
			App:            *app,
			Injections:     *n,
			Seed:           *seed,
			Regions:        shorts,
			Equivalence:    *equivalence,
			TraceDiff:      *traceDiff,
			LeaseSize:      *leaseSize,
			LeaseTTLMillis: leaseTTL.Milliseconds(),
		}
		if *adaptive {
			// The planner sizes the plan; Submit normalizes the contract
			// and computes the AVF priors the rounds are seeded with.
			spec.Injections = 0
			spec.Adaptive = true
			spec.TargetHalfWidth = *targetD
			spec.Confidence = *confidence
			spec.RoundSize = *roundSize
		}
		err := co.Submit(spec)
		if err != nil {
			log.Print(err)
			return 1
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("listen: %v", err)
		return 1
	}
	url := "http://" + ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(url+"\n"), 0o644); err != nil {
			log.Printf("addr-file: %v", err)
			return 1
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "coordinator listening at %s (workers: faultcampaign -worker %s)\n", url, url)
	}
	srv := &http.Server{Handler: co.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	if *statusEvery > 0 {
		start := time.Now()
		tick := time.NewTicker(*statusEvery)
		statusDone := make(chan struct{})
		go func() {
			defer tick.Stop()
			for {
				select {
				case <-statusDone:
					return
				case <-tick.C:
					fmt.Fprintln(os.Stderr, telemetry.ClusterStatusLine(metrics.Snapshot(), time.Since(start)))
				}
			}
		}()
		defer close(statusDone)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	if !*wait {
		<-sigc
		if !*quiet {
			fmt.Fprintln(os.Stderr, "signal received; shutting down")
		}
		return 0
	}

	// -wait: the campaign may not be loaded yet (POST arrives later), so
	// poll for its Done channel, then block on it.
	var done <-chan struct{}
	for done == nil {
		done = co.Done()
		if done != nil {
			break
		}
		select {
		case <-sigc:
			return 130
		case <-time.After(100 * time.Millisecond):
		}
	}
	select {
	case <-sigc:
		return 130
	case <-done:
	}

	csv, unclassified, err := co.ResultCSV()
	if err != nil {
		log.Print(err)
		return 1
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(csv); err != nil {
		log.Print(err)
		return 1
	}
	st := co.Status()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "campaign complete: %d experiments over %d leases (%d stolen, %d duplicate results resolved)\n",
			st.Results, st.LeasesTotal, st.LeasesStolen, st.Duplicates)
	}
	if unclassified > 0 {
		log.Printf("%d experiments failed to classify (no fault was applied); results are incomplete", unclassified)
		return 1
	}
	return 0
}
