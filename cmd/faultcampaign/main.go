// Command faultcampaign regenerates Tables 2-4 of the paper: the full
// fault-injection campaign over all eight regions (registers, memory
// sections, messages) for one or all of the three test applications.
//
// Usage:
//
//	faultcampaign [-app wavetoy|minimd|minicam|all] [-n 500] [-seed 1]
//	              [-regions reg,fp,...] [-csv] [-quiet]
//	              [-shard i/K] [-journal path] [-resume]
//	              [-worker http://host:8700] [-worker-name w1]
//	              [-liveness live|dead] [-equivalence annotate|prune|audit]
//	              [-predict]
//	              [-metrics-addr :9090] [-metrics-out snapshot.json]
//	              [-status 2s] [-forensics]
//	              [-trace-diff] [-trace-out trace.json]
//	              [-checkpoint-interval 12500] [-checkpoints 32]
//	              [-no-superblock]
//	              [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// -worker turns the process into a campaign engine for a faultcoord
// control plane: it pulls bounded leases from the coordinator at the
// given URL, runs their experiments (the campaign spec — app, seed,
// injections, regions, equivalence policy — arrives with each lease),
// streams the journal segments back over HTTP, and exits when the
// coordinator reports the campaign complete.  A worker holds its leases
// by heartbeat; one that dies or stalls simply forfeits them to other
// workers.  Worker mode takes the campaign definition from the
// coordinator, so it refuses the local campaign flags (-shard, -journal,
// -resume, -app and the rest) rather than silently ignoring them.
//
// -metrics-addr serves live campaign telemetry over HTTP while the
// campaign runs (/metrics in the Prometheus text format, /metrics.json
// as a JSON snapshot); -metrics-out writes one final JSON snapshot at
// exit, and -status prints a one-line progress summary (rate, ETA,
// outcome mix) to stderr at the given interval.  -forensics attaches a
// flight recorder to the faulted rank of every experiment and records
// the last executed PCs, the trap detail and the injection-to-
// manifestation instruction count into the journal; faultmerge
// summarises these as the §5.2 crash/hang-latency histogram.  All four
// are off by default, in which case the campaign runs the exact same
// code path — and produces byte-identical output — as before they
// existed.
//
// -trace-diff records a per-rank message-digest stream (operation, peer,
// tag, byte count, payload hash) during the golden run and every
// experiment, and localizes each Incorrect, Hang or Crash outcome by
// binary-diffing its stream against the golden one: the journal entry
// gains the first divergent message — implicated rank, message index,
// golden-vs-observed digests and the instruction distance from the
// injection.  faultmerge summarises these as the localization table.
// Tracing only observes: fixed-seed tables, CSV and journal order are
// byte-identical with -trace-diff on or off.  -trace-out writes the
// golden trace's identity (app, seed, rank/message counts and digest
// hash) as one JSON line, which CI compares across shard legs and
// coordinator workers.  -trace-diff refuses to combine with an explicit
// -checkpoint-interval/-checkpoints rather than silently disabling one:
// a digest stream must observe every message from instruction 0, and a
// checkpoint-restored experiment skips its golden prefix.
//
// Golden-run checkpointing is on by default: the golden run emits a
// consistent cluster snapshot roughly every -checkpoint-interval retired
// instructions (at most -checkpoints of them), and each experiment
// starts from the latest snapshot preceding its injection trigger
// instead of from t=0.  A fixed-seed campaign produces byte-identical
// tables, CSV and journals with checkpointing on or off — it is purely
// a wall-clock optimization.  -checkpoint-interval 0 disables it;
// -forensics also disables it, because a flight record must cover the
// instructions leading up to the injection.
//
// -no-superblock runs every machine on the per-instruction interpreter
// instead of the compiled superblock tier (internal/vm/superblock.go).
// A fixed-seed campaign produces byte-identical tables, CSV and
// journals with superblocks on or off; the flag exists so differential
// CI legs can prove that equivalence and so a miscompiled block can be
// bisected away from an interpreter bug.
//
// -shard i/K runs only shard i of the K-way partition of the campaign
// plan.  Because every experiment's random stream is derived from
// (seed, region, index) alone, K shard runs at the same seed together
// perform exactly the experiments of the single-process campaign — run
// them on K machines (or CI jobs) with no coordination and merge their
// journals with faultmerge.
//
// -journal path appends every finished experiment to a JSONL checkpoint
// journal (requires a single -app).  With -resume, experiments already
// present in the journal are not re-run, so an interrupted or killed
// campaign picks up where it left off; SIGINT/SIGTERM stop dispatching
// and leave a clean journal.  Shard runs suppress the tables — the
// merged journals are the result.
//
// -liveness directs register-region injections by the static analysis
// in internal/analysis: "live" samples only statically-live bits (same
// error coverage, fewer wasted runs — the reported speedup), "dead"
// samples only provably-dead bits (a soundness audit: everything must
// come back Correct).  -predict prints the static AVF forecast next to
// the campaign's measured manifestation rates.
//
// -equivalence drives register injections by the dataflow equivalence
// partition instead: "prune" samples only bits the analysis cannot
// prove benign and prints Horvitz–Thompson reweighted rates alongside
// the raw tables, "annotate" runs the byte-identical full campaign but
// stamps each register experiment with its equivalence class and
// validates every static claim against the outcomes, and "audit"
// samples only provably-benign bits (everything must classify Correct).
// Mutually exclusive with -liveness.
//
// Exit status: 0 on a clean campaign, 1 if any experiment failed to
// classify (no fault was actually applied, so its row is meaningless —
// CI gates on this), 130 when interrupted by a signal.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"mpifault/internal/analysis"
	"mpifault/internal/apps"
	"mpifault/internal/coord"
	"mpifault/internal/core"
	"mpifault/internal/msgtrace"
	"mpifault/internal/report"
	"mpifault/internal/sampling"
	"mpifault/internal/telemetry"
)

func main() {
	os.Exit(run())
}

// runWorker is the -worker mode: a lease-pulling campaign engine for a
// faultcoord control plane.  It returns when the coordinator reports
// the campaign complete (exit 0) or on SIGINT/SIGTERM (exit 130); lost
// leases are not an error — another worker re-runs them.
func runWorker(url, name string, parallelism int, quiet bool) int {
	if name == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; ok {
			close(stop)
		}
	}()

	opt := coord.WorkerOptions{
		URL:         strings.TrimRight(url, "/"),
		Name:        name,
		Parallelism: parallelism,
		Stop:        stop,
	}
	if !quiet {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "worker %s: %s\n", name, fmt.Sprintf(format, args...))
		}
	}
	if err := coord.RunWorker(opt); err != nil {
		log.Print(err)
		return 1
	}
	select {
	case <-stop:
		return 130
	default:
		return 0
	}
}

// writeGoldenTrace records the golden trace's identity as one JSON
// line.  The fields are all derived from the deterministic golden run,
// so two legs of one campaign — shards, superblock on/off, coordinator
// workers — must write byte-identical files; CI diffs them.
func writeGoldenTrace(path, app string, seed uint64, tr *msgtrace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = fmt.Fprintf(f, "{\"app\":%q,\"seed\":%d,\"ranks\":%d,\"messages\":%d,\"hash\":\"%016x\"}\n",
		app, seed, len(tr.Ranks), tr.Messages(), tr.Hash())
	return err
}

func run() int {
	app := flag.String("app", "all", "application to inject into (wavetoy, minimd, minicam, all)")
	n := flag.Int("n", 500, "injections per region (paper: 400-1000, 2000 for some message rows)")
	seed := flag.Uint64("seed", 1, "campaign seed (same seed => identical campaign)")
	regions := flag.String("regions", "", "comma-separated region subset (reg,fp,bss,data,stack,text,heap,message)")
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of the table layout")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	par := flag.Int("parallel", 0, "concurrent experiment jobs (0 = auto)")
	shardSpec := flag.String("shard", "", "run only shard i of K (format i/K, e.g. 0/3); merge journals with faultmerge")
	journalPath := flag.String("journal", "", "append finished experiments to this JSONL checkpoint journal (single -app only)")
	resume := flag.Bool("resume", false, "skip experiments already recorded in -journal instead of starting fresh")
	liveness := flag.String("liveness", "", "direct register injections by static liveness (live or dead)")
	equivalence := flag.String("equivalence", "", "drive register injections by the static equivalence partition (annotate, prune or audit)")
	predict := flag.Bool("predict", false, "print the static AVF prediction next to the measured rates")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	metricsAddr := flag.String("metrics-addr", "", "serve live campaign metrics over HTTP on this address (/metrics Prometheus text, /metrics.json JSON)")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file at exit")
	forensics := flag.Bool("forensics", false, "record per-experiment fault forensics (last executed PCs, trap detail, manifestation latency) into the journal")
	traceDiff := flag.Bool("trace-diff", false, "record per-rank message-digest streams and localize Incorrect/Hang/Crash outcomes by their first divergence from the golden trace")
	traceOut := flag.String("trace-out", "", "write the golden trace's identity (app, seed, rank/message counts, digest hash) as JSON to this file (requires -trace-diff and a single -app)")
	statusEvery := flag.Duration("status", 0, "print a one-line campaign status to stderr at this interval (e.g. 2s; 0 = off)")
	ckptInterval := flag.Uint64("checkpoint-interval", core.DefaultCheckpointInterval, "golden-run instructions between cluster checkpoints; experiments start from the latest checkpoint before their trigger (0 = always start from t=0)")
	ckptMax := flag.Int("checkpoints", 0, "maximum checkpoints per campaign (0 = default)")
	noSuperblock := flag.Bool("no-superblock", false, "run the per-instruction interpreter instead of the compiled superblock tier (differential CI legs, bisection); fixed-seed output is byte-identical either way")
	workerURL := flag.String("worker", "", "run as a lease-pulling worker for the faultcoord coordinator at this URL; the campaign spec comes from the coordinator")
	workerName := flag.String("worker-name", "", "worker identity in the coordinator's cluster view (default host-pid)")
	adaptive := flag.Bool("adaptive", false, "adaptive sequential stopping: run each region in deterministic rounds and stop once its Wilson CI half-width reaches -d, instead of the fixed worst-case -n everywhere")
	targetD := flag.Float64("d", core.DefaultTargetHalfWidth, "adaptive stopping target: per-region CI half-width (paper parity 0.049)")
	confidence := flag.Float64("confidence", core.DefaultConfidence, "adaptive CI confidence level")
	roundSize := flag.Int("round", 0, "adaptive per-region per-round experiment bound (0 = default)")
	ranksOverride := flag.Int("ranks", 0, "override the application's MPI world size (rank-count sweeps; 0 = app default)")
	scaleOverride := flag.Int("scale", 0, "override the application's per-rank problem size (0 = app default)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("faultcampaign: ")

	if *workerURL != "" {
		// Worker mode takes its whole campaign definition from the
		// coordinator; combining it with local campaign flags would
		// silently ignore one side, so refuse loudly instead.
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "shard", "journal", "resume", "app", "n", "seed", "regions",
				"csv", "liveness", "equivalence", "predict", "forensics",
				"trace-diff", "trace-out",
				"checkpoint-interval", "checkpoints",
				"adaptive", "d", "confidence", "round", "ranks", "scale":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			log.Printf("-worker mode takes the campaign spec from the coordinator; drop %s", strings.Join(conflicts, ", "))
			return 1
		}
		return runWorker(*workerURL, *workerName, *par, *quiet)
	}

	ckptFlagSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "checkpoint-interval" || f.Name == "checkpoints" {
			ckptFlagSet = true
		}
	})
	if *forensics && *ckptInterval > 0 && ckptFlagSet {
		log.Print("-forensics disables checkpointing (flight records must cover the pre-injection prefix)")
	}
	if *traceDiff && ckptFlagSet {
		// Unlike -forensics (which predates this rule and only warns),
		// combining an explicit checkpointing request with -trace-diff is
		// refused outright: a digest stream must observe every message
		// from instruction 0, and a checkpoint-restored experiment skips
		// its golden prefix, so one of the two flags would be a no-op.
		log.Print("-trace-diff cannot be combined with -checkpoint-interval/-checkpoints: digest streams must observe the run from instruction 0, which checkpoint-restored experiments skip")
		return 1
	}
	if *traceOut != "" && !*traceDiff {
		log.Print("-trace-out requires -trace-diff")
		return 1
	}

	nFlagSet := false
	var adaptiveOnly []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "n":
			nFlagSet = true
		case "d", "confidence", "round":
			adaptiveOnly = append(adaptiveOnly, "-"+f.Name)
		}
	})
	if *adaptive {
		// The adaptive planner owns the plan: it sizes each region from
		// its own tallies, so a raw count, a shard of a fixed plan, or
		// checkpoint tuning all contradict it.  Refuse loudly.
		switch {
		case nFlagSet:
			log.Print("-adaptive sizes the campaign itself (stopping at the CI target); it cannot be combined with -n")
			return 1
		case *shardSpec != "":
			log.Print("-adaptive rounds own the plan, so -shard cannot partition it; use faultcoord for distribution")
			return 1
		case ckptFlagSet:
			log.Print("-adaptive reuses the golden run across rounds; it cannot be combined with -checkpoint-interval/-checkpoints")
			return 1
		}
	} else if len(adaptiveOnly) > 0 {
		log.Printf("%s require -adaptive", strings.Join(adaptiveOnly, ", "))
		return 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Printf("cpuprofile: %v", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Printf("cpuprofile: %v", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	// The registry exists only when some consumer asked for it; with all
	// three surfaces off it stays nil and the campaign records nothing.
	var metrics *telemetry.Registry
	if *metricsAddr != "" || *metricsOut != "" || *statusEvery > 0 {
		metrics = telemetry.New()
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Printf("metrics-addr: %v", err)
			return 1
		}
		srv := &http.Server{Handler: telemetry.Handler(metrics)}
		go srv.Serve(ln)
		defer srv.Close()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "serving metrics at http://%s/metrics\n", ln.Addr())
		}
	}
	if *metricsOut != "" {
		defer func() {
			f, err := os.Create(*metricsOut)
			if err != nil {
				log.Printf("metrics-out: %v", err)
				return
			}
			defer f.Close()
			if err := metrics.Snapshot().WriteJSON(f); err != nil {
				log.Printf("metrics-out: %v", err)
			}
		}()
	}
	// adaptiveStatus carries the latest per-stratum CI half-width summary
	// from the planner's round barrier to the -status line.
	var adaptiveStatus atomic.Value
	if *statusEvery > 0 {
		campaignStart := time.Now()
		tick := time.NewTicker(*statusEvery)
		statusDone := make(chan struct{})
		go func() {
			defer tick.Stop()
			for {
				select {
				case <-statusDone:
					return
				case <-tick.C:
					line := telemetry.StatusLine(metrics.Snapshot(), time.Since(campaignStart))
					if s, _ := adaptiveStatus.Load().(string); s != "" {
						line += " | " + s
					}
					fmt.Fprintln(os.Stderr, line)
				}
			}
		}()
		defer close(statusDone)
	}

	var regionList []core.Region
	if *regions != "" {
		for _, s := range strings.Split(*regions, ",") {
			r, err := core.ParseRegion(strings.TrimSpace(s))
			if err != nil {
				log.Print(err)
				return 1
			}
			regionList = append(regionList, r)
		}
	}

	shard, numShards := 0, 1
	if *shardSpec != "" {
		var err error
		shard, numShards, err = core.ParseShard(*shardSpec)
		if err != nil {
			log.Print(err)
			return 1
		}
	}
	if *resume && *journalPath == "" {
		log.Print("-resume requires -journal")
		return 1
	}

	var policy core.LivenessPolicy
	switch *liveness {
	case "":
	case "live":
		policy = core.LiveTargetLive
	case "dead":
		policy = core.LiveTargetDead
	default:
		log.Printf("unknown -liveness policy %q (want live or dead)", *liveness)
		return 1
	}
	eqPolicy, err := core.ParseEquivalencePolicy(*equivalence)
	if err != nil {
		log.Print(err)
		return 1
	}
	if *liveness != "" && eqPolicy != core.EquivOff {
		log.Print("-liveness and -equivalence are mutually exclusive")
		return 1
	}

	names := []string{"wavetoy", "minimd", "minicam"}
	if *app != "all" {
		names = []string{*app}
	}
	if *journalPath != "" && len(names) != 1 {
		log.Print("-journal records one campaign; pass a single -app")
		return 1
	}
	if *traceOut != "" && len(names) != 1 {
		log.Print("-trace-out records one golden trace; pass a single -app")
		return 1
	}

	// A signal stops dispatching new experiments; in-flight ones finish
	// and reach the journal, so a resumed run loses nothing.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; ok {
			close(stop)
		}
	}()

	if !*quiet {
		if *adaptive {
			if cap, err := sampling.SampleSize(*confidence, *targetD); err == nil {
				fmt.Printf("sampling: adaptive sequential stopping at d<=%.1f%% (%.0f%% confidence), fixed-n cap %d/region\n",
					100**targetD, 100**confidence, cap)
			}
		} else if s, err := sampling.Describe(0.95, *n); err == nil {
			fmt.Printf("sampling: %s\n", s)
		}
	}

	unclassified, interrupted := 0, false
	for _, name := range names {
		a, err := apps.Get(name)
		if err != nil {
			log.Print(err)
			return 1
		}
		build := a.Default
		if *ranksOverride > 0 {
			build.Ranks = *ranksOverride
		}
		if *scaleOverride > 0 {
			build.Scale = int32(*scaleOverride)
		}
		im, err := a.Build(build)
		if err != nil {
			log.Printf("build %s: %v", name, err)
			return 1
		}
		start := time.Now()
		cfg := core.Config{
			Image:       im,
			Ranks:       build.Ranks,
			Injections:  *n,
			Regions:     regionList,
			Seed:        *seed,
			Parallelism: *par,
			Shard:       shard,
			NumShards:   numShards,
			Stop:        stop,
			Metrics:     metrics,
			Forensics:   *forensics,
			TraceDiff:   *traceDiff,

			CheckpointInterval: *ckptInterval,
			MaxCheckpoints:     *ckptMax,
			DisableSuperblocks: *noSuperblock,
		}
		if *ckptInterval == 0 {
			cfg.MaxCheckpoints = 0 // -checkpoint-interval 0 means fully off
		}
		if *adaptive {
			// The planner sizes the plan itself; checkpointing is off
			// because the golden run is computed once and reused across
			// rounds (the same trade -forensics makes).
			cfg.Injections = 0
			cfg.CheckpointInterval, cfg.MaxCheckpoints = 0, 0
			cfg.Adaptive = true
			cfg.TargetHalfWidth = *targetD
			cfg.Confidence = *confidence
			cfg.RoundSize = *roundSize
			labels, err := analysis.AVFPriors(im)
			if err != nil {
				log.Printf("avf priors %s: %v", name, err)
				return 1
			}
			if cfg.AVFPriors, err = core.PriorsFromLabels(labels); err != nil {
				log.Print(err)
				return 1
			}
			if _, err := core.NormalizeAdaptive(&cfg); err != nil {
				log.Print(err)
				return 1
			}
			cfg.OnRound = func(st core.AdaptiveStats) {
				adaptiveStatus.Store(st.StatusSuffix())
				if !*quiet {
					fmt.Fprintf(os.Stderr, "%s: round %d: %s\n", name, st.Rounds, st.StatusSuffix())
				}
			}
		}
		var prog *analysis.Program
		var live *analysis.Liveness
		var abiStats map[string]analysis.ABIStats
		if *liveness != "" || *predict || eqPolicy != core.EquivOff {
			if prog, err = analysis.Analyze(im); err != nil {
				log.Printf("analyze %s: %v", name, err)
				return 1
			}
			live = analysis.ComputeLiveness(prog)
			var abiFindings []analysis.Finding
			abiFindings, abiStats = analysis.ABICheck(prog)
			if total := len(prog.Findings) + len(live.Findings) + len(abiFindings); total > 0 {
				log.Printf("%s: static analysis reported %d findings; run faultlint", name, total)
				return 1
			}
		}
		if *liveness != "" {
			cfg.Liveness = live
			cfg.LivenessPolicy = policy
		}
		if eqPolicy != core.EquivOff {
			flow := analysis.ComputeDataflow(prog, live)
			if len(flow.Findings) > 0 {
				log.Printf("%s: dataflow pass reported %d findings; run faultlint", name, len(flow.Findings))
				return 1
			}
			cfg.Equivalence = analysis.ComputeEquivalence(prog, live, flow, abiStats)
			cfg.EquivalencePolicy = eqPolicy
			// The reweighted tables need the per-experiment annotations.
			cfg.KeepExperiments = true
		}
		if !*quiet {
			cfg.Progress = func(done, total int) {
				if done%50 == 0 || done == total {
					fmt.Fprintf(os.Stderr, "\r%s: %d/%d experiments", name, done, total)
					if done == total {
						fmt.Fprintln(os.Stderr)
					}
				}
			}
		}

		var journal *report.Journal
		resumed := 0
		if *journalPath != "" {
			hdr := report.CampaignHeader(name, cfg)
			if *resume {
				var completed map[string]core.Experiment
				journal, completed, err = report.ResumeJournal(*journalPath, hdr)
				cfg.Completed = completed
				resumed = len(completed)
			} else {
				journal, err = report.CreateJournal(*journalPath, hdr)
			}
			if err != nil {
				log.Print(err)
				return 1
			}
			cfg.OnExperiment = func(e core.Experiment) {
				if err := journal.Append(e); err != nil {
					log.Printf("journal: %v", err)
				}
			}
		}

		var res *core.Result
		if *adaptive {
			res, err = core.RunAdaptive(cfg)
		} else {
			res, err = core.Run(cfg)
		}
		if journal != nil {
			if cerr := journal.Close(); cerr != nil {
				log.Printf("journal: %v", cerr)
			}
		}
		if err != nil {
			log.Printf("campaign %s: %v", name, err)
			return 1
		}
		unclassified += res.Unclassified
		if st := res.Checkpoints; st != nil && !*quiet {
			if st.Fallback {
				fmt.Fprintf(os.Stderr, "%s: checkpointing fell back to scratch starts (run too short or capture pass diverged)\n", name)
			} else {
				fmt.Fprintf(os.Stderr, "%s: %d checkpoints; %d/%d experiments restored mid-run, %.1fM golden-prefix instructions skipped\n",
					name, st.Taken, st.Hits, st.Hits+st.Misses, float64(st.InstrsSkipped)/1e6)
			}
		}
		if *traceDiff && res.Golden != nil && res.Golden.Trace != nil {
			tr := res.Golden.Trace
			if !*quiet {
				fmt.Fprintf(os.Stderr, "%s: golden trace digest %016x (%d messages across %d ranks)\n",
					name, tr.Hash(), tr.Messages(), len(tr.Ranks))
			}
			if *traceOut != "" {
				if err := writeGoldenTrace(*traceOut, name, *seed, tr); err != nil {
					log.Printf("trace-out: %v", err)
					return 1
				}
			}
		}
		if res.Interrupted {
			done := 0
			for _, t := range res.Tallies {
				done += t.Executions
			}
			log.Printf("%s: interrupted after %d experiments; resume with -resume -journal %s",
				name, done, *journalPath)
			interrupted = true
			break
		}

		if numShards > 1 {
			// A shard's tables would be misleading fragments; the result
			// is the journal, merged across shards by faultmerge.
			done := 0
			for _, t := range res.Tallies {
				done += t.Executions
			}
			fmt.Printf("%s: shard %d/%d complete: %d experiments (%d resumed from journal)\n",
				name, shard, numShards, done, resumed)
			continue
		}
		if *csv {
			report.WriteCampaignCSV(os.Stdout, name, res)
		} else {
			report.WriteCampaign(os.Stdout, fmt.Sprintf("%s, stands in for %s", name, a.Paper), res)
			fmt.Printf("(campaign wall time %.1fs)\n\n", time.Since(start).Seconds())
		}
		// In -csv mode stdout carries only CSV tables; prose summaries
		// move to stderr so the output stays machine-parseable.
		prose := os.Stdout
		if *csv {
			prose = os.Stderr
		}
		if st := res.Adaptive; st != nil {
			if !*csv {
				report.WriteRates(os.Stdout, name, res, st.Confidence, st.Target, eqPolicy == core.EquivPrune)
				fmt.Println()
			}
			fmt.Fprintf(prose, "%s: adaptive stopping converged in %d rounds: %d experiments vs %d fixed-n (%.2fx of the worst case)\n\n",
				name, st.Rounds, st.TotalExecuted(), st.FixedTotal(),
				float64(st.TotalExecuted())/float64(st.FixedTotal()))
		}
		if d := res.Directed; d != nil && d.Experiments > 0 {
			fmt.Fprintf(prose, "%s: %s-directed register sampling: %.1f%% of the %d-bit space eligible -> %.1fx fewer injections for equal coverage\n\n",
				name, d.Policy, 100*d.Fraction(), core.RegisterSpaceBits, d.Speedup())
		}
		if s := res.Equivalence; s != nil && s.Experiments > 0 {
			fmt.Fprintf(prose, "%s: equivalence %s register sampling: %.1f%% of the %d-bit space provably benign, %d classes sampled\n",
				name, s.Policy, 100*s.BenignFraction(), core.RegisterSpaceBits, s.Classes)
			if s.Policy == core.EquivPrune {
				if *csv {
					report.WriteReweightedCSV(os.Stdout, name, res)
				} else {
					report.WriteReweighted(os.Stdout, name, res)
				}
			}
			if s.Policy == core.EquivAudit || s.Policy == core.EquivAnnotate {
				findings := core.ValidateEquivalence(cfg.Equivalence, res.Experiments)
				if len(findings) > 0 {
					for _, f := range findings {
						log.Printf("%s: %s", name, f)
					}
					log.Printf("%s: %d equivalence claims contradicted by the campaign — analyzer bug", name, len(findings))
					return 1
				}
				fmt.Fprintf(prose, "%s: all equivalence claims held against the campaign\n", name)
			}
			fmt.Fprintln(prose)
		}
		if *predict {
			rep := analysis.EstimateAVF(prog, live, abiStats, nil)
			rep.App = name
			measured := make(map[string]float64)
			for _, t := range res.Tallies {
				measured[t.Region.String()] = t.ErrorRate() / 100
			}
			fmt.Printf("%s: static AVF prediction vs measured manifestation rate:\n", name)
			rep.WriteAVF(os.Stdout, measured)
			fmt.Println()
		}
	}

	if interrupted {
		return 130
	}
	if unclassified > 0 {
		log.Printf("%d experiments failed to classify (no fault was applied); results are incomplete", unclassified)
		return 1
	}
	return 0
}
