package isa

import (
	"encoding/binary"
	"fmt"
)

// Instr is a decoded instruction.  Rd/Ra/Rb/Rc are raw operand bytes; the
// interpreter validates them at execution time so that bit flips in the
// text segment can select nonexistent registers and fault, as on real
// hardware.
type Instr struct {
	Op  Op
	Rd  uint8 // destination register byte
	Ra  uint8 // first source / base register byte
	Rb  uint8 // second source / index register byte (RegNone = absent)
	Imm int32 // immediate / absolute branch target / displacement
}

// Rc returns the store-source register byte.  The fixed encoding carries
// exactly three register bytes: register-register-register forms use
// (Rd, Ra, Rb), while the store forms need (base, index, source) and
// transmit the source in the Rd slot.  The effects table (effects.go)
// records this slot sharing as OperandRc, so analyses that ask "which
// registers does this instruction read?" (Instr.SrcGPRs) see the store
// source without special-casing; Rc and SetRc are the only code that
// should touch the raw slot.
func (i Instr) Rc() uint8 { return i.Rd }

// SetRc sets the store-source register byte (see Rc for the slot sharing).
func (i *Instr) SetRc(r uint8) { i.Rd = r }

// Encode writes the 8-byte encoding of i into b, which must have room for
// InstrBytes bytes.
func (i Instr) Encode(b []byte) {
	b[0] = byte(i.Op)
	b[1] = i.Rd
	b[2] = i.Ra
	b[3] = i.Rb
	binary.LittleEndian.PutUint32(b[4:8], uint32(i.Imm))
}

// Bytes returns the 8-byte encoding of i.
func (i Instr) Bytes() []byte {
	b := make([]byte, InstrBytes)
	i.Encode(b)
	return b
}

// Decode interprets the first InstrBytes bytes of b as an instruction.
// Decode never fails: invalid opcodes decode to an Instr whose Op fails
// Valid(), and the interpreter raises SIGILL when executing it.
func Decode(b []byte) Instr {
	return Instr{
		Op:  Op(b[0]),
		Rd:  b[1],
		Ra:  b[2],
		Rb:  b[3],
		Imm: int32(binary.LittleEndian.Uint32(b[4:8])),
	}
}

// DecodeAll decodes every complete InstrBytes-sized slot of b into an
// instruction table: entry i covers bytes [i*InstrBytes, (i+1)*InstrBytes).
// It is the batch form of Decode used to predecode a text segment once so
// that interpreters can fetch by slot index instead of re-decoding bytes
// on every retired instruction.  Like Decode it never fails; trailing
// bytes that do not fill a slot are ignored.
func DecodeAll(b []byte) []Instr {
	out := make([]Instr, len(b)/InstrBytes)
	for i := range out {
		out[i] = Decode(b[i*InstrBytes:])
	}
	return out
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	if !i.Op.Valid() {
		return fmt.Sprintf("invalid(0x%02x)", uint8(i.Op))
	}
	info := opTable[i.Op]
	s := info.name
	switch {
	case info.memForm:
		idx := ""
		if i.Rb != RegNone {
			idx = "+" + regName(i.Rb)
		}
		var addr string
		if i.Ra == RegNone && i.Rb == RegNone {
			// Absolute addressing: print like a linked address.
			addr = fmt.Sprintf("[0x%08x]", uint32(i.Imm))
		} else {
			addr = fmt.Sprintf("[%s%s%+d]", regName(i.Ra), idx, i.Imm)
		}
		switch i.Op {
		case OpLd, OpLdb:
			s += " " + regName(i.Rd) + ", " + addr
		case OpSt, OpStb:
			s += " " + addr + ", " + regName(i.Rc())
		default: // fld/fst/fstp
			s += " " + addr
		}
	case i.Op == OpSys:
		s += fmt.Sprintf(" %d", i.Imm)
	case i.Op.IsBranch():
		s += fmt.Sprintf(" 0x%08x", uint32(i.Imm))
	default:
		first := true
		emit := func(t string) {
			if first {
				s += " " + t
				first = false
			} else {
				s += ", " + t
			}
		}
		if info.hasRd {
			emit(regName(i.Rd))
		}
		if info.hasRa {
			emit(regName(i.Ra))
		}
		if info.hasRb {
			emit(regName(i.Rb))
		}
		if info.hasImm {
			emit(fmt.Sprintf("%d", i.Imm))
		}
	}
	return s
}

// Disasm renders the instruction like String, additionally annotating
// address-bearing immediates — branch targets, absolute memory operands
// and movi constants — with the symbol-relative location reported by
// resolve.  resolve maps an address to a name like "wavetoy_compute" or
// "g_ucurr+0x8" and returns "" for addresses it does not know; a nil
// resolve makes Disasm identical to String.
func (i Instr) Disasm(resolve func(addr uint32) string) string {
	s := i.String()
	if resolve == nil || !i.Op.Valid() {
		return s
	}
	var addr uint32
	switch {
	case i.Op.IsBranch():
		addr = uint32(i.Imm)
	case i.Op.IsMemForm() && i.Ra == RegNone && i.Rb == RegNone:
		addr = uint32(i.Imm)
	case i.Op == OpMovi:
		addr = uint32(i.Imm)
	default:
		return s
	}
	if name := resolve(addr); name != "" {
		return s + "  <" + name + ">"
	}
	return s
}

func regName(r uint8) string {
	if r == RegNone {
		return "none"
	}
	if int(r) < NumGPR {
		return GPRName(int(r))
	}
	return fmt.Sprintf("r%d?", r)
}
