package core

// Adaptive campaigns: sequential stopping on top of the fixed-seed
// experiment space.
//
// The crucial property making adaptivity compatible with the repo's
// byte-identity gates is that every experiment's outcome is a pure
// function of (Seed, Region, Index) — the planner only decides WHICH
// indices run, never what they do.  RunAdaptive therefore executes, for
// each region, a gapless prefix [0, n_r) of the same per-region
// experiment sequence the fixed-n campaign would draw, extending the
// prefixes round by round until every region's Wilson CI half-width
// reaches the target d.  Consequences:
//
//   - an adaptive campaign is always a subset of the fixed-n campaign
//     at the same seed (n_r ≤ the §4.3 worst case for every region);
//   - a fixed (seed, config) rerun reproduces byte-identical CSV and
//     journal, because round allocations are a pure function of the
//     tallies and tallies are a pure function of the seed;
//   - a finished journal is self-validating: replaying the planner over
//     the recorded outcomes must land on exactly the recorded counts.

import (
	"fmt"
	"sort"

	"mpifault/internal/classify"
	"mpifault/internal/sampling"
	"mpifault/internal/telemetry"
)

// Paper-parity defaults for the adaptive estimation contract (§4.3:
// 400-500 injections per region give d = 4.4-4.9 % at 95 % confidence).
const (
	DefaultConfidence      = 0.95
	DefaultTargetHalfWidth = 0.049
)

// AdaptiveStratum is the per-region convergence state of an adaptive
// campaign.
type AdaptiveStratum struct {
	Region    Region
	Prior     float64 // pilot-sizing prior (0.5 where no AVF estimate)
	Executed  int     // experiments actually run (the prefix length n_r)
	Errors    int     // manifestations among them
	HalfWidth float64 // Wilson half-width at the final tally
	Closed    bool    // stopping rule satisfied (false only on interruption)
}

// AdaptiveStats summarizes an adaptive campaign's planner: the
// estimation contract, the rounds it took, and where each stratum
// stopped.
type AdaptiveStats struct {
	Confidence float64
	Target     float64
	RoundSize  int
	Cap        int // per-stratum fixed-n worst case (§4.3)
	Rounds     int
	Strata     []AdaptiveStratum
}

// TotalExecuted returns the experiments the adaptive campaign spent.
func (s *AdaptiveStats) TotalExecuted() int {
	var n int
	for i := range s.Strata {
		n += s.Strata[i].Executed
	}
	return n
}

// FixedTotal returns what the fixed-n design would have spent on the
// same regions.
func (s *AdaptiveStats) FixedTotal() int { return s.Cap * len(s.Strata) }

// StatusSuffix renders the per-stratum CI half-widths for the -status
// progress line, e.g. "d<=4.9%: reg 6.2%* fp 4.1% ... (312/3200)".
// An asterisk marks strata still open.
func (s *AdaptiveStats) StatusSuffix() string {
	out := fmt.Sprintf("d<=%.1f%%:", 100*s.Target)
	for i := range s.Strata {
		st := &s.Strata[i]
		mark := ""
		if !st.Closed {
			mark = "*"
		}
		out += fmt.Sprintf(" %s %.1f%%%s", st.Region.Short(), 100*st.HalfWidth, mark)
	}
	return out + fmt.Sprintf(" (%d/%d)", s.TotalExecuted(), s.FixedTotal())
}

// EffectivePriors materializes the pilot priors for the given regions in
// region order, applying the planner's fallback (0.5 for regions with no
// usable estimate).  The result is what journal headers record, so a
// merge can replay the planner without re-running the static analysis.
func EffectivePriors(regions []Region, priors map[Region]float64) []float64 {
	out := make([]float64, len(regions))
	for i, r := range regions {
		p, ok := priors[r]
		if !ok || !(p > 0 && p < 1) {
			p = 0.5
		}
		out[i] = p
	}
	return out
}

// PriorsFromLabels converts a label-keyed prior map (the analysis AVF
// estimator's output, keyed "Regular Reg.", "Text", ...) into the
// region-keyed map Config.AVFPriors takes.  Labels that don't name a
// region are an error — a typo would silently degrade to the 0.5
// fallback otherwise.
func PriorsFromLabels(labels map[string]float64) (map[Region]float64, error) {
	out := make(map[Region]float64, len(labels))
	for label, p := range labels {
		r, err := ParseRegion(label)
		if err != nil {
			return nil, err
		}
		out[r] = p
	}
	return out, nil
}

// adaptivePlanner builds the sampling planner for a config whose
// adaptive defaults have been applied.
func adaptivePlanner(cfg *Config) (*sampling.Planner, []float64, error) {
	priors := EffectivePriors(cfg.Regions, cfg.AVFPriors)
	strata := make([]sampling.Stratum, len(cfg.Regions))
	for i, r := range cfg.Regions {
		strata[i] = sampling.Stratum{Name: r.Short(), Prior: priors[i]}
	}
	p, err := sampling.NewPlanner(sampling.PlannerConfig{
		Confidence: cfg.Confidence,
		Target:     cfg.TargetHalfWidth,
		RoundSize:  cfg.RoundSize,
	}, strata)
	return p, priors, err
}

// NormalizeAdaptive applies the adaptive defaults to a config in place,
// validates the combination, and sizes Injections to the per-stratum
// fixed-n cap (the plan the journal header records).  It is idempotent,
// so callers may normalize once to build a header and again inside
// RunAdaptive.  Returns the cap.
func NormalizeAdaptive(cfg *Config) (int, error) {
	if cfg.Confidence == 0 {
		cfg.Confidence = DefaultConfidence
	}
	if cfg.TargetHalfWidth == 0 {
		cfg.TargetHalfWidth = DefaultTargetHalfWidth
	}
	if cfg.RoundSize == 0 {
		cfg.RoundSize = sampling.DefaultRoundSize
	}
	if len(cfg.Regions) == 0 {
		cfg.Regions = Regions()
	}
	if cfg.Shard != 0 || cfg.NumShards > 1 {
		return 0, fmt.Errorf("core: adaptive campaigns cannot be sharded (rounds own the plan); use the coordinator for distribution")
	}
	if cfg.Entries != nil {
		return 0, fmt.Errorf("core: adaptive campaigns and explicit Entries are mutually exclusive")
	}
	if cfg.CheckpointInterval > 0 || cfg.MaxCheckpoints > 0 {
		return 0, fmt.Errorf("core: adaptive campaigns and checkpointing are mutually exclusive (the golden run is reused across rounds)")
	}
	cap, err := sampling.SampleSize(cfg.Confidence, cfg.TargetHalfWidth)
	if err != nil {
		return 0, err
	}
	if cfg.Injections != 0 && cfg.Injections != cap {
		return 0, fmt.Errorf("core: adaptive campaigns size their own plan (cap %d); Injections must be zero, got %d", cap, cfg.Injections)
	}
	cfg.Injections = cap
	return cap, nil
}

// RunAdaptive executes an adaptive campaign: rounds of Run over growing
// per-region prefixes, with the golden run executed once and reused, and
// the planner advanced only at round barriers.  Composable with
// Forensics, TraceDiff, liveness and equivalence policies; mutually
// exclusive with sharding, explicit entries and checkpointing.
func RunAdaptive(cfg Config) (*Result, error) {
	cap, err := NormalizeAdaptive(&cfg)
	if err != nil {
		return nil, err
	}
	planner, _, err := adaptivePlanner(&cfg)
	if err != nil {
		return nil, err
	}

	var halfWidthGauges []*telemetry.Gauge
	var roundsCtr *telemetry.Counter
	var openGauge *telemetry.Gauge
	if cfg.Metrics != nil {
		roundsCtr = cfg.Metrics.Counter(telemetry.MetricAdaptiveRounds)
		openGauge = cfg.Metrics.Gauge(telemetry.MetricAdaptiveOpen)
		openGauge.Set(int64(len(cfg.Regions)))
		for _, r := range cfg.Regions {
			halfWidthGauges = append(halfWidthGauges, cfg.Metrics.Gauge(telemetry.AdaptiveHalfWidthMetric(r.Short())))
		}
	}

	stats := &AdaptiveStats{
		Confidence: cfg.Confidence,
		Target:     cfg.TargetHalfWidth,
		RoundSize:  cfg.RoundSize,
		Cap:        cap,
	}
	executed := make([]int, len(cfg.Regions)) // prefix length per region
	errors := make([]int, len(cfg.Regions))   // manifestations per region
	var all []Experiment
	golden := cfg.Golden
	interrupted := false

	for {
		if stopped(cfg.Stop) {
			interrupted = true
			break
		}
		allocs := planner.NextRound()
		var entries []PlanEntry
		for i, a := range allocs {
			for k := 0; k < a; k++ {
				entries = append(entries, PlanEntry{Region: cfg.Regions[i], Index: executed[i] + k})
			}
		}
		if len(entries) == 0 {
			break
		}
		stats.Rounds++

		sub := cfg
		sub.Adaptive = false
		sub.TargetHalfWidth, sub.Confidence, sub.RoundSize = 0, 0, 0
		sub.AVFPriors, sub.OnRound, sub.Progress = nil, nil, nil
		sub.Entries = entries
		sub.Golden = golden
		sub.KeepExperiments = true
		res, err := Run(sub)
		if err != nil {
			return nil, err
		}
		golden = res.Golden

		// Fold the round into the per-region prefixes.  An interrupted
		// round may return a gapped set (experiments past the first
		// unfinished entry that happened to finish); only the gapless
		// per-region prefix counts toward the tallies — the rest lives
		// in the journal for a resume to reclaim.
		for i := range res.Experiments {
			e := &res.Experiments[i]
			ri := regionOrdinal(cfg.Regions, e.Region)
			if ri < 0 {
				return nil, fmt.Errorf("core: adaptive round returned foreign experiment %s", e.ID())
			}
			if e.Index != executed[ri] {
				if res.Interrupted {
					continue
				}
				return nil, fmt.Errorf("core: adaptive round returned out-of-order experiment %s", e.ID())
			}
			executed[ri]++
			if e.Outcome != classify.Correct {
				errors[ri]++
			}
			all = append(all, *e)
		}
		for i := range cfg.Regions {
			if err := planner.SetTally(i, errors[i], executed[i]); err != nil {
				return nil, err
			}
		}
		fillAdaptiveStats(stats, planner, cfg.Regions)
		if cfg.Metrics != nil {
			roundsCtr.Inc()
			open := 0
			for i := range stats.Strata {
				halfWidthGauges[i].Set(int64(stats.Strata[i].HalfWidth * 10_000))
				if !stats.Strata[i].Closed {
					open++
				}
			}
			openGauge.Set(int64(open))
		}
		if cfg.OnRound != nil {
			cfg.OnRound(*stats)
		}
		if res.Interrupted {
			interrupted = true
			break
		}
	}

	fillAdaptiveStats(stats, planner, cfg.Regions)
	out := &Result{
		Tallies:      TallyExperiments(cfg.Regions, all),
		Golden:       golden,
		Unclassified: CountUnapplied(all),
		Interrupted:  interrupted,
		Adaptive:     stats,
	}
	if cfg.Liveness != nil {
		out.Directed = directedStatsFor(cfg.LivenessPolicy, all)
	}
	if cfg.Equivalence != nil && cfg.EquivalencePolicy != EquivOff {
		out.Equivalence = equivalenceStatsFor(cfg.EquivalencePolicy, all)
	}
	if cfg.KeepExperiments {
		out.Experiments = all
	}
	return out, nil
}

// fillAdaptiveStats refreshes the per-stratum snapshot from the planner.
func fillAdaptiveStats(stats *AdaptiveStats, planner *sampling.Planner, regions []Region) {
	snap := planner.Snapshot()
	stats.Strata = stats.Strata[:0]
	for i, s := range snap {
		stats.Strata = append(stats.Strata, AdaptiveStratum{
			Region:    regions[i],
			Prior:     s.Prior,
			Executed:  s.Executed,
			Errors:    s.Errors,
			HalfWidth: s.HalfWidth,
			Closed:    s.Closed,
		})
	}
}

// regionOrdinal returns the position of region in the campaign's region
// list, or -1.
func regionOrdinal(regions []Region, r Region) int {
	for i := range regions {
		if regions[i] == r {
			return i
		}
	}
	return -1
}

func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// ReplayAdaptive re-derives the per-region prefix lengths an adaptive
// campaign must have executed, given its estimation contract, priors and
// the recorded outcomes.  errorAt reports whether the experiment at
// (region ordinal, index) manifested; it is only consulted for indices
// the planner actually allocates, in increasing order per region.  The
// returned slice is the expected Executed count per region — a journal
// whose per-region counts differ was not produced by the deterministic
// planner (or was interrupted), and a merge must reject it.
func ReplayAdaptive(confidence, target float64, roundSize int, regions []Region, priors []float64, errorAt func(region, index int) (bool, error)) ([]int, error) {
	if len(priors) != len(regions) {
		return nil, fmt.Errorf("core: %d priors for %d regions", len(priors), len(regions))
	}
	strata := make([]sampling.Stratum, len(regions))
	for i, r := range regions {
		strata[i] = sampling.Stratum{Name: r.Short(), Prior: priors[i]}
	}
	planner, err := sampling.NewPlanner(sampling.PlannerConfig{
		Confidence: confidence, Target: target, RoundSize: roundSize,
	}, strata)
	if err != nil {
		return nil, err
	}
	executed := make([]int, len(regions))
	errors := make([]int, len(regions))
	for {
		allocs := planner.NextRound()
		any := false
		for i, a := range allocs {
			for k := 0; k < a; k++ {
				manifested, err := errorAt(i, executed[i])
				if err != nil {
					return nil, err
				}
				if manifested {
					errors[i]++
				}
				executed[i]++
				any = true
			}
			if a > 0 {
				if err := planner.SetTally(i, errors[i], executed[i]); err != nil {
					return nil, err
				}
			}
		}
		if !any {
			return executed, nil
		}
	}
}

// AdaptiveEntriesForRound flattens a round's per-region allocations into
// plan entries, regions in campaign order and indices ascending — the
// exact order RunAdaptive executes and journals them.  The coordinator
// uses it to cut round leases that reproduce the single-process bytes.
func AdaptiveEntriesForRound(regions []Region, executed, allocs []int) []PlanEntry {
	var entries []PlanEntry
	for i := range regions {
		for k := 0; k < allocs[i]; k++ {
			entries = append(entries, PlanEntry{Region: regions[i], Index: executed[i] + k})
		}
	}
	return entries
}

// SortExperimentsByPlan orders experiments by (region order, index) —
// the fixed-n plan order.  Adaptive journals append rounds
// chronologically, so a merge re-sorts before tallying or re-emitting
// segments; the sort is stable on (region, index) which is unique per
// campaign.
func SortExperimentsByPlan(regions []Region, experiments []Experiment) {
	ord := make(map[Region]int, len(regions))
	for i, r := range regions {
		ord[r] = i
	}
	sort.Slice(experiments, func(a, b int) bool {
		ra, rb := ord[experiments[a].Region], ord[experiments[b].Region]
		if ra != rb {
			return ra < rb
		}
		return experiments[a].Index < experiments[b].Index
	})
}
