// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the fault-injection campaigns.
//
// Reproducibility is a hard requirement for fault-injection research: a
// campaign seeded with the same value must choose exactly the same fault
// locations, ranks and trigger times on every run, on every platform.  The
// generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014), which is tiny,
// fast, passes BigCrush, and — unlike math/rand — supports cheap splitting so
// that every injection experiment can own an independent stream derived from
// the campaign seed.
package rng

// golden gamma constant for SplitMix64 state advancement.
const gamma = 0x9e3779b97f4a7c15

// Rand is a deterministic SplitMix64 generator.  The zero value is a valid
// generator seeded with 0.  Rand is not safe for concurrent use; use Split to
// derive independent generators for concurrent work.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += gamma
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniformly distributed integer in [0, n).  It panics if
// n <= 0.  The implementation uses rejection sampling so the result is
// exactly uniform.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed integer in [0, n).  It panics if
// n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Rejection sampling: draw until the value falls inside the largest
	// multiple of n representable in 64 bits.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniformly distributed boolean.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Split returns a new generator whose stream is statistically independent of
// the receiver's.  The receiver advances by one step.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64()}
}

// Derive returns a generator deterministically derived from the receiver's
// seed and the given labels, without advancing the receiver.  Two Derive
// calls with the same labels yield identical generators, which lets a
// campaign hand experiment i an independent, reproducible stream.
func (r *Rand) Derive(labels ...uint64) *Rand {
	s := r.state
	for _, l := range labels {
		s = mix(s ^ (l + gamma))
	}
	return &Rand{state: s}
}

// SplitInto seeds dst with the stream Split would return, without
// allocating.  The receiver advances by one step, exactly as in Split.
func (r *Rand) SplitInto(dst *Rand) {
	dst.state = r.Uint64()
}

// DeriveInto seeds dst with the stream Derive(labels...) would return,
// without allocating a new generator; the receiver is not advanced.
// Campaign workers use it to re-seed pooled per-experiment generators.
func (r *Rand) DeriveInto(dst *Rand, labels ...uint64) {
	s := r.state
	for _, l := range labels {
		s = mix(s ^ (l + gamma))
	}
	dst.state = s
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}
