#!/bin/sh
# scripts/benchcheck.sh — benchmark regression check against the
# recorded reference in BENCH_vm.json.
#
# Re-runs the internal/vm benchmarks at a smoke-weight benchtime and
# warns when any ns/op figure regressed more than the threshold vs the
# recorded reference.  (A literal -benchtime 1x measures only harness
# overhead — 1 iteration of a 10ns benchmark reports ~30000 ns/op, and
# tiny fixed counts measure cache warm-up — so this uses a short
# time-based benchtime: still sub-second, but the numbers are real.
# The loose 25% default threshold absorbs the remaining noise.)  CI
# runs this as a non-blocking step (continue-on-error), so a warning
# never fails the pipeline — it shows up red in the job list for a
# human to judge.
#
# Usage: scripts/benchcheck.sh [threshold-percent]
set -eu
cd "$(dirname "$0")/.."

THRESHOLD=${1:-25}
BENCHTIME=${BENCHTIME:-200ms}
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

echo "== internal/vm benchmarks ($BENCHTIME) =="
go test -run '^$' -bench . -benchtime "$BENCHTIME" ./internal/vm | tee "$OUT"

echo "== compare vs BENCH_vm.json (threshold ${THRESHOLD}%) =="
go run ./scripts/benchcmp -ref BENCH_vm.json -threshold "$THRESHOLD" < "$OUT"
